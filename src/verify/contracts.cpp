#include "resipe/verify/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "resipe/circuits/transient.hpp"
#include "resipe/common/error.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/simd.hpp"
#include "resipe/crossbar/mapping.hpp"
#include "resipe/nn/model.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"
#include "resipe/serve/pool.hpp"
#include "resipe/serve/scheduler.hpp"
#include "resipe/serve/trace.hpp"
#include "resipe/telemetry/telemetry.hpp"
#include "resipe/verify/approx.hpp"
#include "resipe/verify/ode_oracle.hpp"

namespace resipe::verify {
namespace {

using circuits::Spike;
using resipe_core::EngineConfig;
using resipe_core::FastMvm;
using resipe_core::ProgrammedMatrix;
using resipe_core::ResipeNetwork;
using resipe_core::ResipeTile;
using resipe_core::SpikeCodec;

// Fixed per-contract RNG stream ids: every contract derives its draws
// from hash_seed(spec seed, stream), so adding a contract never shifts
// another one's stream.
enum Stream : std::uint64_t {
  kStreamCodec = 0xC001,
  kStreamOdeRamp = 0xC002,
  kStreamOdeCog = 0xC003,
  kStreamFastTile = 0xC004,
  kStreamFastBatch = 0xC005,
  kStreamPerm = 0xC006,
  kStreamMonotone = 0xC007,
  kStreamZeroInput = 0xC008,
  kStreamAnalogDigital = 0xC009,
  kStreamMatrixBatch = 0xC00A,
  kStreamThreads = 0xC00B,
  kStreamOffFlags = 0xC00C,
  kStreamPerfAccounting = 0xC00D,
  kStreamServing = 0xC00E,
  kStreamSimdEquiv = 0xC00F,
  kStreamServingTrace = 0xC010,
  kStreamSparseDense = 0xC011,
};

InjectedBug g_injected_bug = InjectedBug::kNone;

std::string fail_at(const char* what, std::size_t index, double a, double b) {
  std::ostringstream os;
  os << what << " [" << index << "]: " << describe_mismatch(a, b);
  return os.str();
}

// Restores the process-wide default thread count on scope exit (back to
// auto; the verify harness never runs inside a caller that pinned it).
struct ThreadGuard {
  ~ThreadGuard() { set_default_threads(0); }
};

// --- shared model/tile builders ----------------------------------------

std::vector<double> random_conductances(const CaseSpec& spec, Rng& rng) {
  const auto& dev = spec.config.device;
  std::vector<double> g(spec.rows * spec.cols);
  for (double& v : g) v = rng.uniform(dev.g_min(), dev.g_max());
  return g;
}

/// Programs a faithful tile and snapshots it into a FastMvm.  When the
/// row-drop bug is armed, the FastMvm is built from the same effective
/// conductances with the last row zeroed — the off-by-one a `< rows-1`
/// loop bound would produce in the current sum.
struct TileAndFast {
  std::unique_ptr<ResipeTile> tile;
  std::unique_ptr<FastMvm> fast;
};

TileAndFast build_tile_and_fast(const CaseSpec& spec, Rng& rng) {
  TileAndFast out;
  out.tile = std::make_unique<ResipeTile>(spec.config.circuit, spec.rows,
                                          spec.cols, spec.config.device);
  const std::vector<double> g = random_conductances(spec, rng);
  out.tile->program(g, rng);
  if (g_injected_bug == InjectedBug::kFastMvmRowDrop) {
    std::vector<double> g_eff(spec.rows * spec.cols, 0.0);
    for (std::size_t r = 0; r + 1 < spec.rows; ++r) {
      for (std::size_t c = 0; c < spec.cols; ++c) {
        g_eff[r * spec.cols + c] = out.tile->crossbar().effective_g(r, c);
      }
    }
    out.fast = std::make_unique<FastMvm>(spec.config.circuit, spec.rows,
                                         spec.cols, std::move(g_eff));
  } else {
    out.fast =
        std::make_unique<FastMvm>(spec.config.circuit, out.tile->crossbar());
  }
  return out;
}

/// Random signed weight matrix + bias for a spec.inputs x spec.classes
/// ProgrammedMatrix.
struct MatrixFixture {
  std::vector<double> weights;  // [in, out] row-major
  std::vector<double> bias;
  std::unique_ptr<ProgrammedMatrix> matrix;
};

MatrixFixture build_matrix(const CaseSpec& spec, Rng& rng) {
  MatrixFixture fx;
  fx.weights.resize(spec.inputs * spec.classes);
  for (double& w : fx.weights) w = rng.normal(0.0, 1.0);
  fx.bias.resize(spec.classes);
  for (double& b : fx.bias) b = rng.normal(0.0, 0.1);
  fx.matrix = std::make_unique<ProgrammedMatrix>(
      spec.config, fx.weights, fx.bias, spec.inputs, spec.classes, rng);
  return fx;
}

/// Small MLP matching the spec's network shape, with a calibration
/// batch; the weight draws come from `rng`.
struct NetworkFixture {
  std::unique_ptr<nn::Sequential> model;
  nn::Tensor calibration;
  nn::Tensor batch;
};

NetworkFixture build_network_inputs(const CaseSpec& spec, Rng& rng) {
  NetworkFixture fx;
  fx.model = std::make_unique<nn::Sequential>("verify_mlp");
  std::size_t width = spec.inputs;
  for (const std::size_t hidden : spec.layers) {
    fx.model->emplace<nn::Dense>(width, hidden, rng);
    fx.model->emplace<nn::ReLU>();
    width = hidden;
  }
  fx.model->emplace<nn::Dense>(width, spec.classes, rng);

  fx.calibration = nn::Tensor({8, spec.inputs});
  for (double& v : fx.calibration.data()) v = rng.uniform(0.0, 1.0);
  fx.batch = nn::Tensor({spec.batch, spec.inputs});
  for (double& v : fx.batch.data()) v = rng.uniform(0.0, 1.0);
  return fx;
}

bool bit_identical(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// --- contract bodies ---------------------------------------------------

ContractResult check_config_valid(const CaseSpec& spec) {
  try {
    spec.config.validate();
  } catch (const std::exception& e) {
    return ContractResult::fail(std::string("generated config rejected: ") +
                                e.what());
  }
  return ContractResult::ok();
}

ContractResult check_codec_roundtrip(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamCodec));
  const auto& params = spec.config.circuit;
  const SpikeCodec codec(params, spec.config.quantize_spikes);
  // Worst value error of one clock slot: the ramp's max slope is at
  // t = 0 (exact model) or constant (linear model) — v_s / tau either
  // way — so one slot spans at most slope * clock in volts.
  const double slot_value =
      spec.config.quantize_spikes
          ? (params.v_s / params.tau_gd()) * params.clock_period /
                codec.v_full()
          : 0.0;
  const double tol = slot_value + 1e-9;
  double prev = -1.0;
  for (int i = 0; i <= 64; ++i) {
    const double x =
        i < 49 ? static_cast<double>(i) / 48.0 : rng.uniform(0.0, 1.0);
    const double back = codec.decode(codec.encode(x));
    if (!(std::fabs(back - x) <= tol)) {
      return ContractResult::fail(fail_at("codec round-trip", i, back, x));
    }
    if (i < 49) {  // the grid sweep is ascending: decode must follow
      if (back < prev) {
        return ContractResult::fail(
            fail_at("codec monotonicity", i, back, prev));
      }
      prev = back;
    }
  }
  return ContractResult::ok();
}

ContractResult check_ode_ramp(const CaseSpec& spec) {
  const auto& params = spec.config.circuit;
  if (params.model != circuits::TransferModel::kExact) {
    return ContractResult::skip("linear transfer model (closed form is "
                                "itself the approximation)");
  }
  Rng rng(hash_seed(spec.descriptor.seed, kStreamOdeRamp));
  const double tau = params.tau_gd();
  for (int trial = 0; trial < 4; ++trial) {
    const double t_end = rng.uniform(0.0, params.slice_length);
    const auto rk = integrate_adaptive(
        [&](double, double v) {
          return circuits::rc_node_derivative(v, params.v_s, tau);
        },
        0.0, 0.0, t_end);
    const double closed = params.ramp_voltage(t_end);
    if (!approx_rel(rk.value, closed, 1e-8, 1e-12 * params.v_s)) {
      return ContractResult::fail(
          fail_at("GD ramp vs adaptive RK", trial, closed, rk.value));
    }
  }
  return ContractResult::ok();
}

ContractResult check_ode_cog(const CaseSpec& spec) {
  const auto& params = spec.config.circuit;
  Rng rng(hash_seed(spec.descriptor.seed, kStreamOdeCog));
  const auto& dev = spec.config.device;
  std::vector<double> g(spec.rows), v_wl(spec.rows);
  for (double& v : g) v = rng.uniform(dev.g_min(), dev.g_max());
  for (double& v : v_wl) v = rng.uniform(0.0, params.v_s);

  const auto rk = integrate_adaptive(
      [&](double, double vc) {
        return circuits::cog_comp_derivative(params, g, v_wl, vc);
      },
      0.0, 0.0, params.comp_stage);

  double g_tot = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    g_tot += g[i];
    weighted += g[i] * v_wl[i];
  }
  const double v_eq = weighted / g_tot;
  const double closed =
      v_eq * (1.0 - std::exp(-params.comp_stage * g_tot / params.c_cog));
  if (!approx_rel(rk.value, closed, 1e-8, 1e-12 * params.v_s)) {
    return ContractResult::fail(
        fail_at("COG charge vs adaptive RK", 0, closed, rk.value));
  }
  return ContractResult::ok();
}

ContractResult check_fast_vs_tile(const CaseSpec& spec) {
  const auto& params = spec.config.circuit;
  if (params.comparator_offset_sigma > 0.0) {
    return ContractResult::skip(
        "per-column offset mismatch is drawn independently by the two "
        "implementations");
  }
  Rng rng(hash_seed(spec.descriptor.seed, kStreamFastTile));
  TileAndFast tf = build_tile_and_fast(spec, rng);
  const SpikeCodec codec(params, spec.config.quantize_spikes);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Spike> spikes(spec.rows);
    std::vector<double> t_in(spec.rows);
    for (std::size_t i = 0; i < spec.rows; ++i) {
      spikes[i] = codec.encode(rng.uniform(0.2, 1.0));
      t_in[i] = spikes[i].arrival_time;
    }
    const auto tile_out = tf.tile->execute(spikes);
    std::vector<double> fast_out(spec.cols, 0.0);
    tf.fast->mvm_times(t_in, fast_out);
    for (std::size_t c = 0; c < spec.cols; ++c) {
      if (tile_out[c].valid()) {
        // Algebraically identical, differently factored expressions:
        // 1e-12 relative is the float-exactness bound (same bound the
        // property suite uses).
        if (!approx_rel(fast_out[c], tile_out[c].arrival_time, 1e-12,
                        1e-21)) {
          return ContractResult::fail(fail_at("fast vs tile spike time", c,
                                              fast_out[c],
                                              tile_out[c].arrival_time));
        }
      } else if (fast_out[c] != FastMvm::kNoSpike) {
        return ContractResult::fail(
            fail_at("fast spiked where tile was silent", c, fast_out[c],
                    FastMvm::kNoSpike));
      }
    }
  }
  return ContractResult::ok();
}

ContractResult check_fast_batch(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamFastBatch));
  const std::vector<double> g = random_conductances(spec, rng);
  const FastMvm fast(spec.config.circuit, spec.rows, spec.cols, g);
  const std::size_t n = std::max<std::size_t>(spec.batch, 2);
  std::vector<double> t_in(n * spec.rows);
  const SpikeCodec codec(spec.config.circuit, spec.config.quantize_spikes);
  for (double& t : t_in) t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;

  std::vector<double> batch_out(n * spec.cols, 0.0);
  FastMvm::BatchScratch scratch;
  fast.mvm_times_batch(t_in, n, batch_out, scratch);

  std::vector<double> single_out(spec.cols, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    fast.mvm_times(std::span<const double>(t_in).subspan(s * spec.rows,
                                                         spec.rows),
                   single_out);
    for (std::size_t c = 0; c < spec.cols; ++c) {
      const double batched = batch_out[s * spec.cols + c];
      if (std::memcmp(&batched, &single_out[c], sizeof(double)) != 0) {
        return ContractResult::fail(fail_at("batched vs single FastMvm",
                                            s * spec.cols + c, batched,
                                            single_out[c]));
      }
    }
  }
  return ContractResult::ok();
}

ContractResult check_perm_columns(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamPerm));
  const std::vector<double> g = random_conductances(spec, rng);
  const std::vector<std::size_t> perm = rng.permutation(spec.cols);
  // Column c of the permuted matrix is column perm[c] of the original;
  // each column's row order — and therefore its summation order — is
  // untouched, so outputs must permute bit-for-bit.
  std::vector<double> g_perm(g.size());
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      g_perm[r * spec.cols + c] = g[r * spec.cols + perm[c]];
    }
  }
  const FastMvm a(spec.config.circuit, spec.rows, spec.cols, g);
  const FastMvm b(spec.config.circuit, spec.rows, spec.cols, g_perm);

  std::vector<double> t_in(spec.rows);
  const SpikeCodec codec(spec.config.circuit, spec.config.quantize_spikes);
  for (double& t : t_in) t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;
  std::vector<double> out_a(spec.cols, 0.0), out_b(spec.cols, 0.0);
  a.mvm_times(t_in, out_a);
  b.mvm_times(t_in, out_b);
  for (std::size_t c = 0; c < spec.cols; ++c) {
    const double expect = out_a[perm[c]];
    if (std::memcmp(&out_b[c], &expect, sizeof(double)) != 0) {
      return ContractResult::fail(
          fail_at("column permutation", c, out_b[c], expect));
    }
  }
  return ContractResult::ok();
}

ContractResult check_weight_scale_monotone(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamMonotone));
  const std::vector<double> g = random_conductances(spec, rng);
  const double lambda = rng.uniform(1.1, 3.0);
  std::vector<double> g_scaled(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) g_scaled[i] = lambda * g[i];
  const FastMvm a(spec.config.circuit, spec.rows, spec.cols, g);
  const FastMvm b(spec.config.circuit, spec.rows, spec.cols, g_scaled);

  std::vector<double> t_in(spec.rows);
  const SpikeCodec codec(spec.config.circuit, spec.config.quantize_spikes);
  for (double& t : t_in) t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;
  std::vector<double> out_a(spec.cols, 0.0), out_b(spec.cols, 0.0);
  a.mvm_times(t_in, out_a);
  b.mvm_times(t_in, out_b);
  // Scaling every conductance leaves v_eq unchanged and grows the
  // saturation factor k, so the held voltage rises and the S2 crossing
  // can only move later (kNoSpike == +inf is the latest value).
  const double eps = 1e-12 * spec.config.circuit.slice_length;
  for (std::size_t c = 0; c < spec.cols; ++c) {
    if (out_b[c] < out_a[c] - eps) {
      return ContractResult::fail(
          fail_at("spike-time monotonicity under weight scaling", c,
                  out_b[c], out_a[c]));
    }
  }
  return ContractResult::ok();
}

ContractResult check_zero_input_bias(const CaseSpec& spec) {
  const auto& params = spec.config.circuit;
  if (params.comparator_offset != 0.0 || params.comparator_delay != 0.0 ||
      params.comparator_offset_sigma != 0.0) {
    return ContractResult::skip(
        "comparator non-idealities shift the zero-input spike");
  }
  Rng rng(hash_seed(spec.descriptor.seed, kStreamZeroInput));
  MatrixFixture fx = build_matrix(spec, rng);
  // All-zero input: every wordline holds 0 V, every current sum is
  // exactly 0, every column spikes at t = 0 and recovers exactly 0 —
  // regardless of the programmed weights, faults or drift.  The output
  // must be the bias, bit for bit.
  const std::vector<double> x(spec.inputs, 0.0);
  std::vector<double> y(spec.classes, 0.0);
  fx.matrix->forward(x, y);
  for (std::size_t j = 0; j < spec.classes; ++j) {
    if (std::memcmp(&y[j], &fx.bias[j], sizeof(double)) != 0) {
      return ContractResult::fail(
          fail_at("zero input must yield the exact bias", j, y[j],
                  fx.bias[j]));
    }
  }
  return ContractResult::ok();
}

ContractResult check_analog_vs_digital(const CaseSpec& spec) {
  const EngineConfig& cfg = spec.config;
  const auto& params = cfg.circuit;
  if (params.model != circuits::TransferModel::kExact) {
    return ContractResult::skip("linear model: transfer error unbounded by "
                                "the fidelity model");
  }
  if (cfg.reliability.enabled || cfg.retention_time > 0.0 ||
      cfg.model_wire_ir_drop) {
    return ContractResult::skip(
        "faults / drift / IR drop exceed the clean-path error model");
  }
  if (params.comparator_offset != 0.0 || params.comparator_delay != 0.0 ||
      params.comparator_offset_sigma != 0.0) {
    return ContractResult::skip("comparator non-idealities not in the "
                                "clean-path error model");
  }

  Rng rng(hash_seed(spec.descriptor.seed, kStreamAnalogDigital));
  MatrixFixture fx = build_matrix(spec, rng);
  fx.matrix->set_input_scale(1.0);
  constexpr std::size_t kSamples = 8;
  std::vector<double> batch(kSamples * spec.inputs);
  for (double& v : batch) v = rng.uniform(0.0, 1.0);
  fx.matrix->calibrate_alpha(batch, kSamples);

  // Fidelity-model-predicted bound on |analog - digital| per output.
  //
  // The readout recovers the exact current sum (v_cog * g_tot / k),
  // so on the clean path only two error sources remain:
  //  * input value quantization — the encoded arrival snaps to the
  //    clock grid; one slot spans at most (v_s/tau) * clock in volts,
  //    i.e. dx in value units after the decode scaling;
  //  * realized weights — per cell: half a conductance level, the
  //    write-verify residue, a 6.5-sigma variation excursion and the
  //    1T1R series compression g^2 * r_on; twice (both columns of the
  //    pair), converted by weight_per_siemens.
  const SpikeCodec codec(params, cfg.quantize_spikes);
  const double alpha = fx.matrix->time_scale();
  const double dx = cfg.quantize_spikes
                        ? (params.v_s / params.tau_gd()) *
                              params.clock_period / (alpha * codec.v_full())
                        : 0.0;
  const auto mapped = crossbar::map_weights(fx.weights, spec.inputs,
                                            spec.classes, cfg.device,
                                            cfg.mapping);
  const auto& dev = cfg.device;
  const double g_step =
      (dev.g_max() - dev.g_min()) / std::max(1, dev.levels - 1);
  const double dg_cell = 0.5 * g_step +
                         dev.write_verify_tolerance * dev.g_max() +
                         6.5 * dev.variation_sigma * dev.g_max() +
                         dev.g_max() * dev.g_max() * dev.transistor_r_on;
  const double dw = 2.0 * mapped.weight_per_siemens * dg_cell;
  constexpr double kSafety = 4.0;

  ProgrammedMatrix::ProbeStats stats;
  std::vector<double> y(spec.classes, 0.0);
  for (std::size_t s = 0; s < kSamples; ++s) {
    const std::span<const double> x(batch.data() + s * spec.inputs,
                                    spec.inputs);
    fx.matrix->forward_probed(x, y, stats);
    if (stats.no_spike > 0) {
      return ContractResult::skip(
          "a column censored at the slice boundary; the clean-path bound "
          "does not model clamping");
    }
    for (std::size_t j = 0; j < spec.classes; ++j) {
      double digital = fx.bias[j];
      double bound = 0.0;
      for (std::size_t i = 0; i < spec.inputs; ++i) {
        const double w = fx.weights[i * spec.classes + j];
        digital += w * x[i];
        bound += (std::fabs(w) + dw) * dx + std::fabs(x[i]) * dw;
      }
      bound = kSafety * bound + 1e-9 * (1.0 + std::fabs(digital));
      if (!(std::fabs(y[j] - digital) <= bound)) {
        std::ostringstream os;
        os << "analog MVM outside the fidelity bound: sample " << s
           << " output " << j << ": " << describe_mismatch(y[j], digital)
           << ", bound " << bound;
        return ContractResult::fail(os.str());
      }
    }
  }
  return ContractResult::ok();
}

ContractResult check_matrix_batch(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamMatrixBatch));
  MatrixFixture fx = build_matrix(spec, rng);
  const std::size_t n = std::max<std::size_t>(spec.batch, 2);
  std::vector<double> batch(n * spec.inputs);
  for (double& v : batch) v = rng.uniform(0.0, 1.0);

  std::vector<double> y_batch(n * spec.classes, 0.0);
  ProgrammedMatrix::BatchWorkspace ws;
  fx.matrix->forward_batch(batch, n, y_batch, ws);

  ProgrammedMatrix::ProbeStats stats;
  std::vector<double> y(spec.classes, 0.0), y_probed(spec.classes, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const std::span<const double> x(batch.data() + s * spec.inputs,
                                    spec.inputs);
    fx.matrix->forward(x, y);
    fx.matrix->forward_probed(x, y_probed, stats);
    if (!bit_identical(y, y_probed)) {
      return ContractResult::fail(
          fail_at("probed vs plain forward", s, y_probed[0], y[0]));
    }
    for (std::size_t j = 0; j < spec.classes; ++j) {
      const double batched = y_batch[s * spec.classes + j];
      if (std::memcmp(&batched, &y[j], sizeof(double)) != 0) {
        return ContractResult::fail(fail_at("batched vs single forward",
                                            s * spec.classes + j, batched,
                                            y[j]));
      }
    }
  }
  return ContractResult::ok();
}

ContractResult check_threads_identical(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamThreads));
  NetworkFixture fx = build_network_inputs(spec, rng);
  const ResipeNetwork net(*fx.model, spec.config, fx.calibration);

  ThreadGuard guard;
  std::vector<nn::Tensor> logits;
  for (const std::size_t threads : {1, 2, 8}) {
    set_default_threads(threads);
    logits.push_back(net.forward(fx.batch));
  }
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (!bit_identical(logits[0].data(), logits[i].data())) {
      return ContractResult::fail(
          "logits differ between 1-thread and " +
          std::string(i == 1 ? "2" : "8") + "-thread execution");
    }
  }
  return ContractResult::ok();
}

ContractResult check_off_flags_identical(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamOffFlags));
  NetworkFixture fx = build_network_inputs(spec, rng);

  // A: the generated config with both master switches forced off but
  // every sub-knob left as drawn.  B: the same config with the whole
  // sub-structs reset to defaults.  The documented claim is that a
  // disabled subsystem leaves the engine on the exact legacy path, so
  // its other knobs must be unreachable.
  EngineConfig cfg_a = spec.config;
  cfg_a.reliability.enabled = false;
  cfg_a.introspect.enabled = false;
  EngineConfig cfg_b = cfg_a;
  cfg_b.reliability = reliability::ReliabilityConfig{};
  cfg_b.reliability.enabled = false;
  cfg_b.introspect = introspect::InspectOptions{};

  const ResipeNetwork net_a(*fx.model, cfg_a, fx.calibration);
  const ResipeNetwork net_b(*fx.model, cfg_b, fx.calibration);
  const nn::Tensor ya = net_a.forward(fx.batch);
  const nn::Tensor yb = net_b.forward(fx.batch);
  if (!bit_identical(ya.data(), yb.data())) {
    return ContractResult::fail(
        "disabled reliability/introspection knobs leaked into the logits");
  }
  return ContractResult::ok();
}

ContractResult check_perf_accounting_identity(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamPerfAccounting));
  NetworkFixture fx = build_network_inputs(spec, rng);
  const ResipeNetwork net(*fx.model, spec.config, fx.calibration);

  // The work models only count — they never touch kernel data — so
  // enabling the accounting (and the telemetry it rides on) must leave
  // every logit bit-identical.  Restore both switches on exit so this
  // contract cannot leak state into the next one.
  const bool telem_was = telemetry::enabled();
  perf::set_accounting_enabled(false);
  const nn::Tensor y_off = net.forward(fx.batch);
  telemetry::set_enabled(true);
  perf::set_accounting_enabled(true);
  const nn::Tensor y_on = net.forward(fx.batch);
  perf::set_accounting_enabled(false);
  telemetry::set_enabled(telem_was);

  if (!bit_identical(y_off.data(), y_on.data())) {
    return ContractResult::fail(
        "enabling kernel work accounting perturbed the logits");
  }
  return ContractResult::ok();
}

ContractResult check_serving_identity(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamServing));
  NetworkFixture fx = build_network_inputs(spec, rng);

  // With faults off and deadlines slack, the serving layer is pure
  // routing: whatever batching, probing and dispatch order the drawn
  // ServeConfig produces, every served logit must be bit-identical to
  // the direct engine path.  Overrides below only remove the legitimate
  // reasons to shed (admission pressure, tight deadlines, trigger-happy
  // health limits); batching/backoff/probe cadence stay as drawn.
  EngineConfig cfg = spec.config;
  cfg.reliability.enabled = false;
  cfg.serve.queue_capacity = 64;
  cfg.serve.default_deadline = 1.0e3;
  cfg.serve.health.max_canary_mismatch = 1.0;
  cfg.serve.health.logit_rmse_limit = 1.0e30;
  const serve::ServeConfig& scfg = cfg.serve;

  serve::ChipPool pool(*fx.model, fx.calibration, {cfg, cfg}, scfg);
  const ResipeNetwork direct(*fx.model, cfg, fx.calibration);

  // Trace: calibration rows offered microseconds apart — fast enough
  // that batching happens, slow enough that the 64-deep queue cannot
  // fill from 6 arrivals.
  constexpr std::size_t kRequests = 6;
  const std::size_t calib_n = fx.calibration.dim(0);
  std::vector<serve::Request> trace;
  nn::Tensor direct_in({kRequests, spec.inputs});
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::size_t row = i % calib_n;
    serve::Request req;
    req.id = i;
    req.tag = row;
    req.arrival = static_cast<double>(i) * 1.0e-6;
    const auto src =
        fx.calibration.data().subspan(row * spec.inputs, spec.inputs);
    req.input.assign(src.begin(), src.end());
    std::copy(src.begin(), src.end(),
              direct_in.data().begin() +
                  static_cast<std::ptrdiff_t>(i * spec.inputs));
    trace.push_back(std::move(req));
  }
  const nn::Tensor want = direct.forward(direct_in);

  ThreadGuard guard;
  std::vector<std::vector<serve::Response>> runs;
  for (const std::size_t threads : {1, 2, 8}) {
    set_default_threads(threads);
    serve::Scheduler scheduler(pool, scfg);
    for (const serve::Request& r : trace) scheduler.submit(r);
    runs.push_back(scheduler.run());
  }

  for (std::size_t i = 0; i < kRequests; ++i) {
    const serve::Response& r = runs[0][i];
    if (r.status != serve::Response::Status::kOk) {
      std::ostringstream os;
      os << "request " << i << " not served ok with faults off and slack "
         << "deadlines: status " << serve::to_string(r.status) << " ("
         << serve::to_string(r.reason) << ")";
      return ContractResult::fail(os.str());
    }
    if (!bit_identical(r.logits,
                       want.data().subspan(i * spec.classes, spec.classes))) {
      return ContractResult::fail(fail_at("served vs direct logits", i,
                                          r.logits[0], want[i * spec.classes]));
    }
  }
  for (std::size_t t = 1; t < runs.size(); ++t) {
    for (std::size_t i = 0; i < kRequests; ++i) {
      const serve::Response& a = runs[0][i];
      const serve::Response& b = runs[t][i];
      if (a.status != b.status || a.attempts != b.attempts ||
          a.chip != b.chip ||
          std::memcmp(&a.completion, &b.completion, sizeof(double)) != 0 ||
          !bit_identical(a.logits, b.logits)) {
        std::ostringstream os;
        os << "serving trace diverged between thread counts at request "
           << i;
        return ContractResult::fail(os.str());
      }
    }
  }
  return ContractResult::ok();
}

// Tracing must observe, never steer: a Scheduler with an attached
// EventJournal has to produce bit-identical responses to one without,
// and the journal it fills has to survive the conservation audit
// against the run's own stats.  The drawn ServeConfig is used as-is —
// sheds, retries and quarantines are exactly the edge cases whose
// journaling must not perturb the replay.  ChipPool health state
// persists across runs, so each arm gets its own identically-lowered
// pool (lowering is a pure function of the config).
ContractResult check_serving_trace_identity(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamServingTrace));
  NetworkFixture fx = build_network_inputs(spec, rng);

  EngineConfig cfg = spec.config;
  const serve::ServeConfig& scfg = cfg.serve;

  constexpr std::size_t kRequests = 8;
  constexpr std::uint64_t kTenants = 3;
  const std::size_t calib_n = fx.calibration.dim(0);
  std::vector<serve::Request> trace;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::size_t row = i % calib_n;
    serve::Request req;
    req.id = i;
    req.tag = row;
    req.tenant = i % kTenants;
    req.arrival = static_cast<double>(i) * 1.0e-6;
    const auto src =
        fx.calibration.data().subspan(row * spec.inputs, spec.inputs);
    req.input.assign(src.begin(), src.end());
    trace.push_back(std::move(req));
  }

  const auto run_arm = [&](serve::EventJournal* journal,
                           serve::ServingStats& stats_out) {
    serve::ChipPool pool(*fx.model, fx.calibration, {cfg, cfg}, scfg);
    serve::Scheduler scheduler(pool, scfg);
    scheduler.attach_journal(journal);
    for (const serve::Request& r : trace) scheduler.submit(r);
    std::vector<serve::Response> out = scheduler.run();
    stats_out = scheduler.stats();
    return out;
  };

  serve::ServingStats stats_plain, stats_traced;
  serve::EventJournal journal;
  const std::vector<serve::Response> plain = run_arm(nullptr, stats_plain);
  const std::vector<serve::Response> traced =
      run_arm(&journal, stats_traced);

  for (std::size_t i = 0; i < kRequests; ++i) {
    const serve::Response& a = plain[i];
    const serve::Response& b = traced[i];
    if (a.id != b.id || a.tag != b.tag || a.tenant != b.tenant ||
        a.status != b.status || a.reason != b.reason ||
        a.attempts != b.attempts || a.chip != b.chip ||
        a.degraded_outputs != b.degraded_outputs ||
        std::memcmp(&a.arrival, &b.arrival, sizeof(double)) != 0 ||
        std::memcmp(&a.completion, &b.completion, sizeof(double)) != 0 ||
        !bit_identical(a.logits, b.logits)) {
      std::ostringstream os;
      os << "attaching a journal changed response " << i << " (status "
         << serve::to_string(a.status) << " vs "
         << serve::to_string(b.status) << ")";
      return ContractResult::fail(os.str());
    }
  }

  const serve::TraceAudit audit = serve::audit_trace(journal, stats_traced);
  if (!audit.ok()) {
    std::ostringstream os;
    os << "journal failed the conservation audit: "
       << audit.issues.front() << " (" << audit.issues.size()
       << " issue(s) total)";
    return ContractResult::fail(os.str());
  }
  if (audit.requests != kRequests) {
    std::ostringstream os;
    os << "journal saw " << audit.requests << " requests, submitted "
       << kRequests;
    return ContractResult::fail(os.str());
  }
  return ContractResult::ok();
}

// SIMD path vs scalar reference, within a bound derived from the
// kernel's numeric contract rather than an arbitrary tolerance.
//
// The SIMD kernels differ from the scalar reference in exactly two
// ways (include/resipe/common/simd.hpp):
//   1. the per-column row sum folds in vector-lane order — classical
//      summation-error bound gamma_n = n*eps on a sum of non-negative
//      terms (every v_wl * g product is >= 0);
//   2. exp/log are polynomial, within simd::kTranscendentalUlp ulp of
//      libm.
// Everything else is per-lane IEEE arithmetic, identical to scalar.
// The check propagates those two sources through the recovery chain:
//   d_weighted = 2n*eps*weighted + dv*g_total          (sum + S1 exp)
//   d_threshold = d_weighted * k / g_total + rounding
//   d_t: linear model  -> d_th * tau / v_s;
//        exact model   -> tau * d_th / (v_s - th) plus the log's own
//                         ulp bound — the saturation pole is real, so
//                         a threshold within its bound of v_s (or a
//                         spike time within bound of the slice end)
//                         may legitimately land on either side of the
//                         silence cut and is not a violation.
// A network-level pass then requires the argmax decision to match
// wherever the scalar logit margin exceeds a conservative noise floor.
ContractResult check_simd_equivalence(const CaseSpec& spec) {
  if (simd::native_lanes == 1) {
    return ContractResult::skip("scalar build: no vector path to compare");
  }
  if (!simd::enabled()) {
    return ContractResult::skip("RESIPE_SIMD=scalar: vector path disabled");
  }
  const auto& params = spec.config.circuit;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  const double kTrans = simd::kTranscendentalUlp + 8.0;
  constexpr double kSafety = 4.0;
  const bool linear = params.model == circuits::TransferModel::kLinear;
  const double tau = params.tau_gd();
  const double v_s = params.v_s;

  Rng rng(hash_seed(spec.descriptor.seed, kStreamSimdEquiv));
  const std::vector<double> g = random_conductances(spec, rng);
  const FastMvm fast(params, spec.rows, spec.cols, g);
  const SpikeCodec codec(params, spec.config.quantize_spikes);
  const std::size_t n = std::max<std::size_t>(spec.batch, 2);
  std::vector<double> t_in(n * spec.rows);
  for (double& t : t_in) t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;

  std::vector<double> vec_out(n * spec.cols, 0.0);
  FastMvm::BatchScratch scratch;
  fast.mvm_times_batch(t_in, n, vec_out, scratch);
  std::vector<double> ref_out(n * spec.cols, 0.0);
  {
    simd::ForceScalarGuard guard;
    FastMvm::BatchScratch ref_scratch;
    fast.mvm_times_batch(t_in, n, ref_out, ref_scratch);
  }

  std::vector<double> v_wl(spec.rows, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    // Reference S1 voltages, recomputed scalar for the bound.
    for (std::size_t r = 0; r < spec.rows; ++r) {
      const double t = t_in[s * spec.rows + r];
      if (!(t >= 0.0) || t == FastMvm::kNoSpike || t > params.slice_length) {
        v_wl[r] = 0.0;
      } else {
        v_wl[r] = linear ? std::min(v_s * t / tau, v_s)
                         : v_s * (1.0 - std::exp(-t / tau));
      }
    }
    for (std::size_t c = 0; c < spec.cols; ++c) {
      const std::size_t idx = s * spec.cols + c;
      const double got = vec_out[idx];
      const double ref = ref_out[idx];
      if (std::memcmp(&got, &ref, sizeof(double)) == 0) continue;
      const double g_tot = fast.g_total(c);
      if (g_tot <= 0.0) {
        // Unprogrammed column: both paths must report the comparator
        // delay exactly; any difference is a wiring bug, not rounding.
        return ContractResult::fail(
            fail_at("SIMD vs scalar on unprogrammed column", idx, got, ref));
      }

      double weighted = 0.0;
      for (std::size_t r = 0; r < spec.rows; ++r) {
        weighted += v_wl[r] * g[r * spec.cols + c];
      }
      // S1 carries a transcendental only in the exact model; linear
      // lanes are op-for-op identical, leaving pure rounding slack.
      const double dv = (linear ? 4.0 : kTrans) * kEps * v_s;
      const double d_weighted =
          2.0 * static_cast<double>(spec.rows) * kEps * weighted +
          dv * g_tot;
      const double k = fast.k(c);
      const double th_ref = weighted / g_tot * k + params.comparator_offset;
      const double d_th =
          d_weighted / g_tot * k + 8.0 * kEps * std::fabs(th_ref);

      // Raw reference crossing (before the slice-silence cut).
      double t_raw;
      if (th_ref <= 0.0) {
        t_raw = 0.0;
      } else if (linear) {
        t_raw = th_ref * tau / v_s;
      } else if (th_ref >= v_s) {
        t_raw = FastMvm::kNoSpike;
      } else {
        t_raw = -tau * std::log(1.0 - th_ref / v_s);
      }
      t_raw += params.comparator_delay;

      double d_t;
      if (linear) {
        d_t = d_th * tau / v_s + 8.0 * kEps * tau;
      } else {
        const double denom = v_s - th_ref - kSafety * d_th;
        if (denom <= 0.0) {
          // Threshold within its own error bound of the saturation
          // pole: either side may (not) spike; no bounded statement.
          continue;
        }
        d_t = tau * d_th / denom +
              kTrans * kEps * (tau + std::min(t_raw, params.slice_length));
      }
      d_t = kSafety * d_t + 1e-21;

      const bool ref_silent = ref == FastMvm::kNoSpike;
      const bool got_silent = got == FastMvm::kNoSpike;
      if (ref_silent != got_silent) {
        // A spike within the bound of the slice end may fall on either
        // side of the silence cut.
        if (std::fabs(t_raw - params.slice_length) <= d_t) continue;
        return ContractResult::fail(fail_at(
            "SIMD/scalar silence disagreement beyond the derived bound",
            idx, got, ref));
      }
      if (!(std::fabs(got - ref) <= d_t)) {
        std::ostringstream os;
        os << "SIMD vs scalar spike time [" << idx
           << "]: " << describe_mismatch(got, ref) << ", derived bound "
           << d_t;
        return ContractResult::fail(os.str());
      }
    }
  }

  // Network level: the classification decision must be SIMD-invariant
  // wherever the scalar margin clears a conservative noise floor.
  NetworkFixture fx = build_network_inputs(spec, rng);
  const ResipeNetwork net(*fx.model, spec.config, fx.calibration);
  const nn::Tensor vec_logits = net.forward(fx.batch);
  const nn::Tensor ref_logits = [&] {
    simd::ForceScalarGuard guard;
    return net.forward(fx.batch);
  }();
  const std::size_t samples = vec_logits.data().size() / spec.classes;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto a = vec_logits.data().subspan(s * spec.classes, spec.classes);
    const auto b = ref_logits.data().subspan(s * spec.classes, spec.classes);
    std::size_t best = 0;
    double scale = 0.0;
    for (std::size_t j = 0; j < spec.classes; ++j) {
      if (b[j] > b[best]) best = j;
      scale = std::max(scale, std::fabs(b[j]));
    }
    double runner_up = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < spec.classes; ++j) {
      if (j != best) runner_up = std::max(runner_up, b[j]);
    }
    const double margin = b[best] - runner_up;
    if (!(margin > 1e-6 * (scale + 1.0))) continue;
    std::size_t got_best = 0;
    for (std::size_t j = 0; j < spec.classes; ++j) {
      if (a[j] > a[got_best]) got_best = j;
    }
    if (got_best != best) {
      std::ostringstream os;
      os << "SIMD flipped the argmax on sample " << s << ": scalar class "
         << best << " (margin " << margin << "), SIMD class " << got_best;
      return ContractResult::fail(os.str());
    }
  }
  return ContractResult::ok();
}

ContractResult check_sparse_dense_identity(const CaseSpec& spec) {
  Rng rng(hash_seed(spec.descriptor.seed, kStreamSparseDense));
  NetworkFixture fx = build_network_inputs(spec, rng);
  // Zero out a random half of the batch so the event path actually
  // meets silent rows (the fixture draws dense positive activations);
  // fully dense and fully silent inputs are covered by the extremes of
  // the bernoulli draw across cases.
  for (double& v : fx.batch.data()) {
    if (rng.bernoulli(0.5)) v = 0.0;
  }

  EngineConfig cfg_dense = spec.config;
  cfg_dense.events.enabled = false;
  EngineConfig cfg_event = spec.config;
  cfg_event.events.enabled = true;
  // The flag is never consulted while programming, so both engines
  // hold identical conductances.
  const ResipeNetwork net_dense(*fx.model, cfg_dense, fx.calibration);
  const ResipeNetwork net_event(*fx.model, cfg_event, fx.calibration);

  const nn::Tensor ref = net_dense.forward(fx.batch);
  const nn::Tensor got = net_event.forward(fx.batch);
  if (!bit_identical(ref.data(), got.data())) {
    return ContractResult::fail(
        "event-driven logits differ from the dense reference");
  }

  ThreadGuard guard;
  for (const std::size_t threads : {1, 2, 8}) {
    set_default_threads(threads);
    const nn::Tensor again = net_event.forward(fx.batch);
    if (!bit_identical(ref.data(), again.data())) {
      return ContractResult::fail("event-driven logits drift at " +
                                  std::to_string(threads) + " threads");
    }
  }
  return ContractResult::ok();
}

}  // namespace

void set_injected_bug(InjectedBug bug) { g_injected_bug = bug; }
InjectedBug injected_bug() { return g_injected_bug; }

const std::vector<Contract>& contract_registry() {
  static const std::vector<Contract> registry = {
      {"config_valid",
       "generated configurations pass EngineConfig::validate()",
       check_config_valid},
      {"codec_roundtrip",
       "spike codec round-trips values within one clock slot, "
       "monotonically", check_codec_roundtrip},
      {"ode_ramp",
       "closed-form GD ramp matches an adaptive Cash-Karp integration of "
       "the same RC node", check_ode_ramp},
      {"ode_cog",
       "closed-form COG charging matches an adaptive Cash-Karp "
       "integration of the computation-stage node", check_ode_cog},
      {"fast_vs_tile",
       "FastMvm agrees with the faithful per-cell tile to float "
       "exactness", check_fast_vs_tile},
      {"fast_batch_vs_single",
       "FastMvm::mvm_times_batch is bit-identical to per-sample "
       "mvm_times", check_fast_batch},
      {"perm_columns",
       "permuting crossbar columns permutes output spike times "
       "bit-for-bit", check_perm_columns},
      {"weight_scale_monotone",
       "scaling all conductances up never makes any output spike "
       "earlier", check_weight_scale_monotone},
      {"zero_input_bias",
       "an all-zero input yields exactly the bias, regardless of "
       "weights or faults", check_zero_input_bias},
      {"analog_vs_digital",
       "clean-path analog MVM stays inside the fidelity-model error "
       "bound vs the digital reference", check_analog_vs_digital},
      {"matrix_batch_vs_single",
       "ProgrammedMatrix forward_batch and forward_probed are "
       "bit-identical to forward", check_matrix_batch},
      {"threads_identical",
       "network logits are bit-identical at 1, 2 and 8 threads",
       check_threads_identical},
      {"off_flags_identical",
       "disabled reliability/introspection sub-knobs cannot affect "
       "logits", check_off_flags_identical},
      {"perf_accounting_identity",
       "kernel work accounting on vs off leaves logits bit-identical",
       check_perf_accounting_identity},
      {"serving_identity",
       "the serving path (pool + scheduler) reproduces direct engine "
       "logits bit-for-bit and replays identically at any thread count",
       check_serving_identity},
      {"simd_equivalence",
       "SIMD kernels match the scalar reference within the derived "
       "reassociation/ULP bound and never flip a clear argmax",
       check_simd_equivalence},
      {"serving_trace_identity",
       "attaching an event journal leaves every response bit-identical "
       "and the journal passes the conservation audit",
       check_serving_trace_identity},
      {"sparse_dense_identity",
       "event-driven execution is bit-identical to the dense reference "
       "on every logit, at any thread count",
       check_sparse_dense_identity},
  };
  return registry;
}

const Contract* find_contract(const std::string& name) {
  for (const Contract& c : contract_registry()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace resipe::verify
