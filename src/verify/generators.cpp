#include "resipe/verify/generators.hpp"

#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/units.hpp"

namespace resipe::verify {

using resipe_core::EngineConfig;

std::string CaseSpec::summary() const {
  std::ostringstream os;
  os << "seed=" << descriptor.seed << " schema=" << descriptor.schema_version
     << " xbar=" << rows << "x" << cols << " tile=" << config.tile_rows
     << "x" << config.tile_cols << " map="
     << crossbar::to_string(config.mapping)
     << " quant=" << (config.quantize_spikes ? 1 : 0)
     << " model=" << (config.circuit.model == circuits::TransferModel::kExact
                          ? "exact"
                          : "linear")
     << " rgd=" << config.circuit.r_gd / units::kOhm << "k"
     << " slice=" << config.circuit.slice_length / units::ns << "ns"
     << " clk=" << config.circuit.clock_period / units::ns << "ns"
     << " levels=" << config.device.levels
     << " sigma=" << config.device.variation_sigma
     << " rel=" << (config.reliability.enabled ? 1 : 0)
     << " insp=" << (config.introspect.enabled ? 1 : 0)
     << " evt=" << (config.events.enabled ? 1 : 0)
     << " srv=[q" << config.serve.queue_capacity << " b"
     << config.serve.batch_max << " r" << config.serve.retry_max << "]"
     << " net=["
     << inputs;
  for (const std::size_t w : layers) os << "->" << w;
  os << "->" << classes << "] batch=" << batch;
  return os.str();
}

CaseSpec generate_case(const CaseDescriptor& descriptor) {
  RESIPE_REQUIRE(descriptor.schema_version == kSchemaVersion,
                 "unknown case schema version "
                     << descriptor.schema_version << " (this build speaks "
                     << kSchemaVersion << ")");
  Rng rng(hash_seed(descriptor.seed, descriptor.schema_version));

  CaseSpec spec;
  spec.descriptor = descriptor;

  // --- raw crossbar geometry (tile-level contracts).
  spec.rows = static_cast<std::size_t>(rng.uniform_int(1, 32));
  spec.cols = static_cast<std::size_t>(rng.uniform_int(1, 12));

  EngineConfig& cfg = spec.config;

  // --- circuit operating point.
  switch (rng.uniform_int(0, 3)) {
    case 0:
      cfg.circuit = circuits::CircuitParams::paper_defaults();
      break;
    case 1:
      cfg.circuit = circuits::CircuitParams::linear_regime();
      break;
    default:
      cfg.circuit = circuits::CircuitParams::nn_calibrated();
      break;
  }
  // Free-range GD time constant: log-uniform across two decades so the
  // saturating, calibrated and quasi-linear regimes are all covered.
  cfg.circuit.r_gd = rng.log_uniform(50.0 * units::kOhm, 10.0 * units::MOhm);
  const double slice_choices[] = {50.0, 100.0, 200.0};
  cfg.circuit.slice_length =
      slice_choices[rng.uniform_int(0, 2)] * units::ns;
  const double clock_choices[] = {0.5, 1.0, 2.0};
  cfg.circuit.clock_period =
      clock_choices[rng.uniform_int(0, 2)] * units::ns;
  cfg.circuit.comp_stage = rng.bernoulli(0.2) ? 2.0 * units::ns
                                              : 1.0 * units::ns;
  cfg.circuit.model = rng.bernoulli(0.15) ? circuits::TransferModel::kLinear
                                          : circuits::TransferModel::kExact;
  if (rng.bernoulli(0.2)) {
    cfg.circuit.comparator_offset = rng.uniform(-5.0, 5.0) * units::mV;
    cfg.circuit.comparator_delay = rng.uniform(0.0, 1.0) * units::ns;
    cfg.circuit.comparator_offset_sigma = rng.uniform(0.0, 2.0) * units::mV;
  }

  // --- device corner.
  cfg.device = rng.bernoulli(0.5) ? device::ReramSpec::nn_mapping()
                                  : device::ReramSpec::characterization();
  const int level_choices[] = {8, 16, 32, 64};
  cfg.device.levels = level_choices[rng.uniform_int(0, 3)];
  cfg.device.variation_sigma =
      rng.bernoulli(0.5) ? rng.uniform(0.0, 0.2) : 0.0;
  cfg.device.write_verify_tolerance =
      rng.bernoulli(0.5) ? rng.uniform(0.0, 0.02) : 0.01;
  cfg.device.read_noise_sigma =
      rng.bernoulli(0.15) ? rng.uniform(0.0, 0.02) : 0.0;
  cfg.device.transistor_r_on =
      rng.bernoulli(0.3) ? 0.0 : rng.log_uniform(100.0, 2.0 * units::kOhm);

  // --- tiling + mapping.
  const std::size_t tile_choices[] = {4, 8, 16, 32};
  cfg.tile_rows = tile_choices[rng.uniform_int(0, 3)];
  cfg.tile_cols = tile_choices[rng.uniform_int(0, 3)];
  switch (rng.uniform_int(0, 3)) {
    case 0:
      cfg.mapping = crossbar::SignedMapping::kComplementaryPair;
      break;
    case 1:
      cfg.mapping = crossbar::SignedMapping::kOffsetColumn;
      break;
    default:
      cfg.mapping = crossbar::SignedMapping::kDifferentialPair;
      break;
  }
  cfg.quantize_spikes = rng.bernoulli(0.8);
  cfg.calibration_headroom = rng.uniform(0.5, 0.95);
  cfg.input_scale_margin = rng.uniform(1.0, 1.5);
  cfg.program_seed = rng.next_u64();

  // --- reliability / introspection flag cross-product.  Both arms draw
  // their sub-parameters unconditionally so the *flags* (not the draw
  // count) decide behavior — a shrinker flip of `enabled` never shifts
  // the downstream stream.
  const bool reliability_on = rng.bernoulli(0.3);
  cfg.reliability.enabled = reliability_on;
  cfg.reliability.faults.stuck_lrs_rate = rng.uniform(0.0, 0.02);
  cfg.reliability.faults.stuck_hrs_rate = rng.uniform(0.0, 0.02);
  cfg.reliability.faults.cluster_fraction =
      rng.bernoulli(0.3) ? 0.5 : 0.0;
  cfg.reliability.mitigation.enabled = rng.bernoulli(0.7);
  const std::size_t spare_choices[] = {0, 2, 4};
  cfg.reliability.mitigation.spare_cols =
      spare_choices[rng.uniform_int(0, 2)];
  cfg.reliability.fault_seed = rng.next_u64();

  const bool introspect_on = rng.bernoulli(0.3);
  cfg.introspect.enabled = introspect_on;
  cfg.introspect.spike_time_bins =
      static_cast<std::size_t>(rng.uniform_int(1, 24));
  cfg.introspect.max_probe_vectors =
      static_cast<std::size_t>(rng.uniform_int(0, 8));

  if (rng.bernoulli(0.1)) {
    cfg.retention_time = rng.log_uniform(10.0, 1.0e7);
    cfg.device.drift_nu = 0.05;
  }
  cfg.model_wire_ir_drop = rng.bernoulli(0.1);

  // --- network shape.
  spec.inputs = static_cast<std::size_t>(rng.uniform_int(2, 16));
  const auto hidden = rng.uniform_int(0, 2);
  for (std::int64_t i = 0; i < hidden; ++i) {
    spec.layers.push_back(static_cast<std::size_t>(rng.uniform_int(2, 16)));
  }
  spec.classes = static_cast<std::size_t>(rng.uniform_int(2, 8));
  spec.batch = static_cast<std::size_t>(rng.uniform_int(1, 4));

  // --- serving layer (schema v2).  Appended after every v1 draw so the
  // earlier stream is bit-identical across versions.  Ranges mirror
  // ServeConfig::validate()'s accepted domain exactly.
  serve::ServeConfig& srv = cfg.serve;
  srv.queue_capacity = static_cast<std::size_t>(rng.uniform_int(1, 64));
  srv.batch_max = static_cast<std::size_t>(rng.uniform_int(1, 8));
  srv.batch_window = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.0, 1.0e-3);
  srv.default_deadline = rng.log_uniform(1.0e-4, 1.0);
  srv.retry_max = static_cast<int>(rng.uniform_int(0, 4));
  srv.backoff_base = rng.log_uniform(1.0e-6, 1.0e-3);
  srv.backoff_multiplier = rng.uniform(1.0, 3.0);
  srv.backoff_max = srv.backoff_base * rng.uniform(1.0, 100.0);
  srv.backoff_jitter = rng.uniform(0.0, 1.0);
  srv.health.canary_period = rng.log_uniform(1.0e-4, 1.0e-2);
  srv.health.canary_images = static_cast<std::size_t>(rng.uniform_int(1, 8));
  srv.health.max_canary_mismatch = rng.uniform(0.0, 1.0);
  srv.health.logit_rmse_limit = rng.uniform(0.0, 2.0);
  srv.health.quarantine_after =
      static_cast<std::size_t>(rng.uniform_int(1, 3));
  srv.health.readmit_after = static_cast<std::size_t>(rng.uniform_int(1, 4));
  srv.seed = rng.next_u64();

  // --- event-driven execution (schema v3).  Appended after every v2
  // draw so the earlier stream is bit-identical across versions.  The
  // flag is drawn 50/50 so half the corpus exercises the sparse path
  // in every contract, not just sparse_dense_identity.
  cfg.events.enabled = rng.bernoulli(0.5);

  // The generator's output contract: everything it emits is valid.
  cfg.validate();
  return spec;
}

}  // namespace resipe::verify
