#include "resipe/verify/serialize.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "resipe/common/error.hpp"

namespace resipe::verify {
namespace {

using circuits::TransferModel;
using crossbar::SignedMapping;

// --- writing -----------------------------------------------------------

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

const char* mapping_name(SignedMapping m) {
  switch (m) {
    case SignedMapping::kComplementaryPair:
      return "complementary_pair";
    case SignedMapping::kOffsetColumn:
      return "offset_column";
    default:
      return "differential_pair";
  }
}

SignedMapping mapping_from(const std::string& s) {
  if (s == "complementary_pair") return SignedMapping::kComplementaryPair;
  if (s == "offset_column") return SignedMapping::kOffsetColumn;
  RESIPE_REQUIRE(s == "differential_pair",
                 "unknown mapping strategy '" << s << "' in repro record");
  return SignedMapping::kDifferentialPair;
}

// --- minimal flat-JSON scanner -----------------------------------------
//
// Accepts exactly the subset repro_to_json emits: one object whose
// values are numbers, booleans, strings or arrays of numbers.  No
// external JSON dependency — the container bakes none in.

class Scanner {
 public:
  explicit Scanner(const std::string& text) : s_(text) {}

  void expect(char c) {
    skip_ws();
    RESIPE_REQUIRE(i_ < s_.size() && s_[i_] == c,
                   "repro JSON: expected '" << c << "' at offset " << i_);
    ++i_;
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return i_ < s_.size() ? s_[i_] : '\0';
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\' && i_ < s_.size()) {
        c = s_[i_++];
        if (c == 'n') c = '\n';
      }
      out += c;
    }
    expect('"');
    return out;
  }

  /// A bare token: number, true, false.
  std::string token() {
    skip_ws();
    const std::size_t start = i_;
    while (i_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '+' || s_[i_] == '-' ||
                              s_[i_] == '.')) {
      ++i_;
    }
    RESIPE_REQUIRE(i_ > start, "repro JSON: expected a value at offset " << i_);
    return s_.substr(start, i_ - start);
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

double to_double(const std::string& t) {
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  RESIPE_REQUIRE(end && *end == '\0', "repro JSON: bad number '" << t << "'");
  return v;
}

std::uint64_t to_u64(const std::string& t) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(t.c_str(), &end, 10);
  RESIPE_REQUIRE(end && *end == '\0',
                 "repro JSON: bad integer '" << t << "'");
  return v;
}

bool to_bool(const std::string& t) {
  RESIPE_REQUIRE(t == "true" || t == "false",
                 "repro JSON: bad boolean '" << t << "'");
  return t == "true";
}

}  // namespace

std::string repro_to_json(const ReproRecord& record) {
  const CaseSpec& s = record.spec;
  const auto& cfg = s.config;
  std::ostringstream os;
  os << "{\n";
  const auto field = [&os](const char* key, const std::string& value,
                           bool last = false) {
    os << "  \"" << key << "\": " << value << (last ? "\n" : ",\n");
  };
  field("schema_version", std::to_string(s.descriptor.schema_version));
  field("seed", quoted(std::to_string(s.descriptor.seed)));
  field("contract", quoted(record.contract));
  field("detail", quoted(record.detail));
  field("rows", std::to_string(s.rows));
  field("cols", std::to_string(s.cols));
  field("inputs", std::to_string(s.inputs));
  {
    std::string arr = "[";
    for (std::size_t i = 0; i < s.layers.size(); ++i) {
      arr += (i ? ", " : "") + std::to_string(s.layers[i]);
    }
    arr += "]";
    field("layers", arr);
  }
  field("classes", std::to_string(s.classes));
  field("batch", std::to_string(s.batch));
  field("tile_rows", std::to_string(cfg.tile_rows));
  field("tile_cols", std::to_string(cfg.tile_cols));
  field("mapping", quoted(mapping_name(cfg.mapping)));
  field("quantize_spikes", cfg.quantize_spikes ? "true" : "false");
  field("calibration_headroom", num(cfg.calibration_headroom));
  field("input_scale_margin", num(cfg.input_scale_margin));
  field("program_seed", quoted(std::to_string(cfg.program_seed)));
  field("model_wire_ir_drop", cfg.model_wire_ir_drop ? "true" : "false");
  field("wire_r_wordline", num(cfg.wires.r_wordline_segment));
  field("wire_r_bitline", num(cfg.wires.r_bitline_segment));
  field("retention_time", num(cfg.retention_time));
  field("circuit_v_s", num(cfg.circuit.v_s));
  field("circuit_r_gd", num(cfg.circuit.r_gd));
  field("circuit_c_gd", num(cfg.circuit.c_gd));
  field("circuit_c_cog", num(cfg.circuit.c_cog));
  field("circuit_slice_length", num(cfg.circuit.slice_length));
  field("circuit_comp_stage", num(cfg.circuit.comp_stage));
  field("circuit_spike_width", num(cfg.circuit.spike_width));
  field("circuit_clock_period", num(cfg.circuit.clock_period));
  field("circuit_comparator_offset", num(cfg.circuit.comparator_offset));
  field("circuit_comparator_delay", num(cfg.circuit.comparator_delay));
  field("circuit_comparator_offset_sigma",
        num(cfg.circuit.comparator_offset_sigma));
  field("circuit_model",
        quoted(cfg.circuit.model == TransferModel::kLinear ? "linear"
                                                           : "exact"));
  field("device_r_lrs", num(cfg.device.r_lrs));
  field("device_r_hrs", num(cfg.device.r_hrs));
  field("device_levels", std::to_string(cfg.device.levels));
  field("device_write_verify_tolerance",
        num(cfg.device.write_verify_tolerance));
  field("device_variation_sigma", num(cfg.device.variation_sigma));
  field("device_read_noise_sigma", num(cfg.device.read_noise_sigma));
  field("device_stuck_lrs_rate", num(cfg.device.stuck_lrs_rate));
  field("device_stuck_hrs_rate", num(cfg.device.stuck_hrs_rate));
  field("device_drift_nu", num(cfg.device.drift_nu));
  field("device_drift_t0", num(cfg.device.drift_t0));
  field("device_transistor_r_on", num(cfg.device.transistor_r_on));
  field("rel_enabled", cfg.reliability.enabled ? "true" : "false");
  field("rel_stuck_lrs_rate", num(cfg.reliability.faults.stuck_lrs_rate));
  field("rel_stuck_hrs_rate", num(cfg.reliability.faults.stuck_hrs_rate));
  field("rel_cluster_fraction",
        num(cfg.reliability.faults.cluster_fraction));
  field("rel_cluster_size",
        std::to_string(cfg.reliability.faults.cluster_size));
  field("rel_read_disturb_rate", num(cfg.reliability.read_disturb_rate));
  field("rel_expected_mvms", num(cfg.reliability.expected_mvms));
  field("rel_endurance_cycles", num(cfg.reliability.endurance_cycles));
  field("rel_wear_cycles", num(cfg.reliability.wear_cycles));
  field("rel_mapper_rail_tolerance",
        num(cfg.reliability.mapper.rail_tolerance));
  field("rel_mapper_reads_per_cell",
        std::to_string(cfg.reliability.mapper.reads_per_cell));
  field("rel_mapper_miss_rate", num(cfg.reliability.mapper.miss_rate));
  field("rel_mapper_false_alarm_rate",
        num(cfg.reliability.mapper.false_alarm_rate));
  field("rel_mit_enabled",
        cfg.reliability.mitigation.enabled ? "true" : "false");
  field("rel_mit_spare_cols",
        std::to_string(cfg.reliability.mitigation.spare_cols));
  field("rel_mit_remap_columns",
        cfg.reliability.mitigation.remap_columns ? "true" : "false");
  field("rel_mit_compensate_pairs",
        cfg.reliability.mitigation.compensate_pairs ? "true" : "false");
  field("rel_mit_write_verify_retries",
        std::to_string(cfg.reliability.mitigation.write_verify_retries));
  field("rel_mit_degrade_threshold",
        num(cfg.reliability.mitigation.degrade_threshold));
  field("rel_fault_seed", quoted(std::to_string(cfg.reliability.fault_seed)));
  field("insp_enabled", cfg.introspect.enabled ? "true" : "false");
  field("insp_max_probe_vectors",
        std::to_string(cfg.introspect.max_probe_vectors));
  field("insp_max_attribution_vectors",
        std::to_string(cfg.introspect.max_attribution_vectors));
  field("insp_attribute_error",
        cfg.introspect.attribute_error ? "true" : "false");
  field("insp_accuracy_attribution",
        cfg.introspect.accuracy_attribution ? "true" : "false");
  field("insp_energy_ledger",
        cfg.introspect.energy_ledger ? "true" : "false");
  field("insp_spike_time_bins",
        std::to_string(cfg.introspect.spike_time_bins));
  field("insp_activity_threshold", num(cfg.introspect.activity_threshold));
  field("serve_queue_capacity", std::to_string(cfg.serve.queue_capacity));
  field("serve_batch_max", std::to_string(cfg.serve.batch_max));
  field("serve_batch_window", num(cfg.serve.batch_window));
  field("serve_default_deadline", num(cfg.serve.default_deadline));
  field("serve_retry_max", std::to_string(cfg.serve.retry_max));
  field("serve_backoff_base", num(cfg.serve.backoff_base));
  field("serve_backoff_multiplier", num(cfg.serve.backoff_multiplier));
  field("serve_backoff_max", num(cfg.serve.backoff_max));
  field("serve_backoff_jitter", num(cfg.serve.backoff_jitter));
  field("serve_canary_period", num(cfg.serve.health.canary_period));
  field("serve_canary_images",
        std::to_string(cfg.serve.health.canary_images));
  field("serve_max_canary_mismatch",
        num(cfg.serve.health.max_canary_mismatch));
  field("serve_logit_rmse_limit", num(cfg.serve.health.logit_rmse_limit));
  field("serve_quarantine_after",
        std::to_string(cfg.serve.health.quarantine_after));
  field("serve_readmit_after",
        std::to_string(cfg.serve.health.readmit_after));
  field("serve_seed", quoted(std::to_string(cfg.serve.seed)));
  field("events_enabled", cfg.events.enabled ? "true" : "false",
        /*last=*/true);
  os << "}\n";
  return os.str();
}

ReproRecord repro_from_json(const std::string& json) {
  ReproRecord record;
  CaseSpec& s = record.spec;
  auto& cfg = s.config;
  Scanner sc(json);
  sc.expect('{');
  bool first = true;
  while (sc.peek() != '}') {
    if (!first) sc.expect(',');
    first = false;
    const std::string key = sc.string_value();
    sc.expect(':');

    if (key == "layers") {
      sc.expect('[');
      s.layers.clear();
      while (sc.peek() != ']') {
        if (!s.layers.empty()) sc.expect(',');
        s.layers.push_back(static_cast<std::size_t>(to_u64(sc.token())));
      }
      sc.expect(']');
      continue;
    }

    std::string v;
    if (sc.peek() == '"') {
      v = sc.string_value();
    } else {
      v = sc.token();
    }

    if (key == "schema_version") {
      s.descriptor.schema_version = static_cast<std::uint32_t>(to_u64(v));
    } else if (key == "seed") {
      s.descriptor.seed = to_u64(v);
    } else if (key == "contract") {
      record.contract = v;
    } else if (key == "detail") {
      record.detail = v;
    } else if (key == "rows") {
      s.rows = static_cast<std::size_t>(to_u64(v));
    } else if (key == "cols") {
      s.cols = static_cast<std::size_t>(to_u64(v));
    } else if (key == "inputs") {
      s.inputs = static_cast<std::size_t>(to_u64(v));
    } else if (key == "classes") {
      s.classes = static_cast<std::size_t>(to_u64(v));
    } else if (key == "batch") {
      s.batch = static_cast<std::size_t>(to_u64(v));
    } else if (key == "tile_rows") {
      cfg.tile_rows = static_cast<std::size_t>(to_u64(v));
    } else if (key == "tile_cols") {
      cfg.tile_cols = static_cast<std::size_t>(to_u64(v));
    } else if (key == "mapping") {
      cfg.mapping = mapping_from(v);
    } else if (key == "quantize_spikes") {
      cfg.quantize_spikes = to_bool(v);
    } else if (key == "calibration_headroom") {
      cfg.calibration_headroom = to_double(v);
    } else if (key == "input_scale_margin") {
      cfg.input_scale_margin = to_double(v);
    } else if (key == "program_seed") {
      cfg.program_seed = to_u64(v);
    } else if (key == "model_wire_ir_drop") {
      cfg.model_wire_ir_drop = to_bool(v);
    } else if (key == "wire_r_wordline") {
      cfg.wires.r_wordline_segment = to_double(v);
    } else if (key == "wire_r_bitline") {
      cfg.wires.r_bitline_segment = to_double(v);
    } else if (key == "retention_time") {
      cfg.retention_time = to_double(v);
    } else if (key == "circuit_v_s") {
      cfg.circuit.v_s = to_double(v);
    } else if (key == "circuit_r_gd") {
      cfg.circuit.r_gd = to_double(v);
    } else if (key == "circuit_c_gd") {
      cfg.circuit.c_gd = to_double(v);
    } else if (key == "circuit_c_cog") {
      cfg.circuit.c_cog = to_double(v);
    } else if (key == "circuit_slice_length") {
      cfg.circuit.slice_length = to_double(v);
    } else if (key == "circuit_comp_stage") {
      cfg.circuit.comp_stage = to_double(v);
    } else if (key == "circuit_spike_width") {
      cfg.circuit.spike_width = to_double(v);
    } else if (key == "circuit_clock_period") {
      cfg.circuit.clock_period = to_double(v);
    } else if (key == "circuit_comparator_offset") {
      cfg.circuit.comparator_offset = to_double(v);
    } else if (key == "circuit_comparator_delay") {
      cfg.circuit.comparator_delay = to_double(v);
    } else if (key == "circuit_comparator_offset_sigma") {
      cfg.circuit.comparator_offset_sigma = to_double(v);
    } else if (key == "circuit_model") {
      RESIPE_REQUIRE(v == "exact" || v == "linear",
                     "unknown transfer model '" << v << "' in repro record");
      cfg.circuit.model =
          v == "linear" ? TransferModel::kLinear : TransferModel::kExact;
    } else if (key == "device_r_lrs") {
      cfg.device.r_lrs = to_double(v);
    } else if (key == "device_r_hrs") {
      cfg.device.r_hrs = to_double(v);
    } else if (key == "device_levels") {
      cfg.device.levels = static_cast<int>(to_u64(v));
    } else if (key == "device_write_verify_tolerance") {
      cfg.device.write_verify_tolerance = to_double(v);
    } else if (key == "device_variation_sigma") {
      cfg.device.variation_sigma = to_double(v);
    } else if (key == "device_read_noise_sigma") {
      cfg.device.read_noise_sigma = to_double(v);
    } else if (key == "device_stuck_lrs_rate") {
      cfg.device.stuck_lrs_rate = to_double(v);
    } else if (key == "device_stuck_hrs_rate") {
      cfg.device.stuck_hrs_rate = to_double(v);
    } else if (key == "device_drift_nu") {
      cfg.device.drift_nu = to_double(v);
    } else if (key == "device_drift_t0") {
      cfg.device.drift_t0 = to_double(v);
    } else if (key == "device_transistor_r_on") {
      cfg.device.transistor_r_on = to_double(v);
    } else if (key == "rel_enabled") {
      cfg.reliability.enabled = to_bool(v);
    } else if (key == "rel_stuck_lrs_rate") {
      cfg.reliability.faults.stuck_lrs_rate = to_double(v);
    } else if (key == "rel_stuck_hrs_rate") {
      cfg.reliability.faults.stuck_hrs_rate = to_double(v);
    } else if (key == "rel_cluster_fraction") {
      cfg.reliability.faults.cluster_fraction = to_double(v);
    } else if (key == "rel_cluster_size") {
      cfg.reliability.faults.cluster_size =
          static_cast<std::size_t>(to_u64(v));
    } else if (key == "rel_read_disturb_rate") {
      cfg.reliability.read_disturb_rate = to_double(v);
    } else if (key == "rel_expected_mvms") {
      cfg.reliability.expected_mvms = to_double(v);
    } else if (key == "rel_endurance_cycles") {
      cfg.reliability.endurance_cycles = to_double(v);
    } else if (key == "rel_wear_cycles") {
      cfg.reliability.wear_cycles = to_double(v);
    } else if (key == "rel_mapper_rail_tolerance") {
      cfg.reliability.mapper.rail_tolerance = to_double(v);
    } else if (key == "rel_mapper_reads_per_cell") {
      cfg.reliability.mapper.reads_per_cell =
          static_cast<std::size_t>(to_u64(v));
    } else if (key == "rel_mapper_miss_rate") {
      cfg.reliability.mapper.miss_rate = to_double(v);
    } else if (key == "rel_mapper_false_alarm_rate") {
      cfg.reliability.mapper.false_alarm_rate = to_double(v);
    } else if (key == "rel_mit_enabled") {
      cfg.reliability.mitigation.enabled = to_bool(v);
    } else if (key == "rel_mit_spare_cols") {
      cfg.reliability.mitigation.spare_cols =
          static_cast<std::size_t>(to_u64(v));
    } else if (key == "rel_mit_remap_columns") {
      cfg.reliability.mitigation.remap_columns = to_bool(v);
    } else if (key == "rel_mit_compensate_pairs") {
      cfg.reliability.mitigation.compensate_pairs = to_bool(v);
    } else if (key == "rel_mit_write_verify_retries") {
      cfg.reliability.mitigation.write_verify_retries =
          static_cast<int>(to_u64(v));
    } else if (key == "rel_mit_degrade_threshold") {
      cfg.reliability.mitigation.degrade_threshold = to_double(v);
    } else if (key == "rel_fault_seed") {
      cfg.reliability.fault_seed = to_u64(v);
    } else if (key == "insp_enabled") {
      cfg.introspect.enabled = to_bool(v);
    } else if (key == "insp_max_probe_vectors") {
      cfg.introspect.max_probe_vectors =
          static_cast<std::size_t>(to_u64(v));
    } else if (key == "insp_max_attribution_vectors") {
      cfg.introspect.max_attribution_vectors =
          static_cast<std::size_t>(to_u64(v));
    } else if (key == "insp_attribute_error") {
      cfg.introspect.attribute_error = to_bool(v);
    } else if (key == "insp_accuracy_attribution") {
      cfg.introspect.accuracy_attribution = to_bool(v);
    } else if (key == "insp_energy_ledger") {
      cfg.introspect.energy_ledger = to_bool(v);
    } else if (key == "insp_spike_time_bins") {
      cfg.introspect.spike_time_bins = static_cast<std::size_t>(to_u64(v));
    } else if (key == "insp_activity_threshold") {
      cfg.introspect.activity_threshold = to_double(v);
    } else if (key == "serve_queue_capacity") {
      cfg.serve.queue_capacity = static_cast<std::size_t>(to_u64(v));
    } else if (key == "serve_batch_max") {
      cfg.serve.batch_max = static_cast<std::size_t>(to_u64(v));
    } else if (key == "serve_batch_window") {
      cfg.serve.batch_window = to_double(v);
    } else if (key == "serve_default_deadline") {
      cfg.serve.default_deadline = to_double(v);
    } else if (key == "serve_retry_max") {
      cfg.serve.retry_max = static_cast<int>(to_u64(v));
    } else if (key == "serve_backoff_base") {
      cfg.serve.backoff_base = to_double(v);
    } else if (key == "serve_backoff_multiplier") {
      cfg.serve.backoff_multiplier = to_double(v);
    } else if (key == "serve_backoff_max") {
      cfg.serve.backoff_max = to_double(v);
    } else if (key == "serve_backoff_jitter") {
      cfg.serve.backoff_jitter = to_double(v);
    } else if (key == "serve_canary_period") {
      cfg.serve.health.canary_period = to_double(v);
    } else if (key == "serve_canary_images") {
      cfg.serve.health.canary_images = static_cast<std::size_t>(to_u64(v));
    } else if (key == "serve_max_canary_mismatch") {
      cfg.serve.health.max_canary_mismatch = to_double(v);
    } else if (key == "serve_logit_rmse_limit") {
      cfg.serve.health.logit_rmse_limit = to_double(v);
    } else if (key == "serve_quarantine_after") {
      cfg.serve.health.quarantine_after =
          static_cast<std::size_t>(to_u64(v));
    } else if (key == "serve_readmit_after") {
      cfg.serve.health.readmit_after = static_cast<std::size_t>(to_u64(v));
    } else if (key == "serve_seed") {
      cfg.serve.seed = to_u64(v);
    } else if (key == "events_enabled") {
      cfg.events.enabled = to_bool(v);
    } else {
      RESIPE_REQUIRE(false, "unknown key '" << key << "' in repro record");
    }
  }
  sc.expect('}');
  return record;
}

std::string repro_snippet(const ReproRecord& record) {
  std::ostringstream os;
  os << "// Reproduces contract violation '" << record.contract << "'\n"
     << "// case: " << record.spec.summary() << "\n"
     << "// " << record.detail << "\n"
     << "#include \"resipe/verify/contracts.hpp\"\n"
     << "#include \"resipe/verify/serialize.hpp\"\n\n"
     << "const auto record = resipe::verify::repro_from_json(R\"json(\n"
     << repro_to_json(record)
     << ")json\");\n"
     << "const auto* contract =\n"
     << "    resipe::verify::find_contract(record.contract);\n"
     << "const auto result = contract->check(record.spec);\n"
     << "// result.violated() is expected to be true until the bug is "
        "fixed.\n";
  return os.str();
}

}  // namespace resipe::verify
