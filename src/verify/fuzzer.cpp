#include "resipe/verify/fuzzer.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/verify/serialize.hpp"
#include "resipe/verify/shrink.hpp"

namespace resipe::verify {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string write_repro(const std::string& dir, const FuzzFailure& failure) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  ReproRecord record{failure.shrunk, failure.contract, failure.detail};
  const fs::path path =
      fs::path(dir) / ("repro_" + failure.contract + "_seed" +
                       std::to_string(failure.original.descriptor.seed) +
                       ".json");
  std::ofstream out(path);
  RESIPE_REQUIRE(out.good(), "cannot write repro record " << path.string());
  out << repro_to_json(record);
  return path.string();
}

}  // namespace

std::size_t FuzzReport::checks() const {
  std::size_t n = 0;
  for (const auto& [name, stats] : contracts) {
    n += stats.pass + stats.fail + stats.skip;
  }
  return n;
}

std::string FuzzReport::render() const {
  std::ostringstream os;
  os << "fuzz: " << cases_run << " cases, " << checks() << " checks, "
     << violations() << " violations in " << wall_s << " s"
     << (budget_exhausted ? " (budget exhausted)" : "") << "\n";
  for (const auto& [name, stats] : contracts) {
    os << "  " << name << ": " << stats.pass << " pass";
    if (stats.skip > 0) os << ", " << stats.skip << " skip";
    if (stats.fail > 0) os << ", " << stats.fail << " FAIL";
    os << "\n";
  }
  for (const FuzzFailure& f : failures) {
    os << "VIOLATION " << f.contract << "\n"
       << "  found:  " << f.original.summary() << "\n";
    if (f.shrink_steps > 0) {
      os << "  shrunk: " << f.shrunk.summary() << " (" << f.shrink_steps
         << " moves)\n";
    }
    os << "  " << f.detail << "\n";
    if (!f.repro_path.empty()) os << "  repro:  " << f.repro_path << "\n";
  }
  return os.str();
}

std::string FuzzReport::bench_json() const {
  std::ostringstream os;
  os << "BENCH_JSON {\"bench\": \"verify_fuzz\", \"schema_version\": "
     << kSchemaVersion << ", \"cases\": " << cases_run
     << ", \"checks\": " << checks() << ", \"violations\": " << violations()
     << ", \"wall_s\": " << wall_s << ", \"cases_per_s\": "
     << (wall_s > 0.0 ? static_cast<double>(cases_run) / wall_s : 0.0)
     << ", \"budget_exhausted\": " << (budget_exhausted ? "true" : "false")
     << "}";
  return os.str();
}

ContractResult replay_case(const CaseSpec& spec,
                           const std::string& contract_name) {
  const Contract* contract = find_contract(contract_name);
  RESIPE_REQUIRE(contract != nullptr,
                 "unknown contract '" << contract_name << "'");
  return contract->check(spec);
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  const auto& registry = contract_registry();
  if (!options.contract_filter.empty()) {
    RESIPE_REQUIRE(find_contract(options.contract_filter) != nullptr,
                   "unknown contract '" << options.contract_filter << "'");
  }

  FuzzReport report;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < options.cases; ++i) {
    if (options.budget_s > 0.0 && seconds_since(t0) >= options.budget_s) {
      report.budget_exhausted = true;
      break;
    }
    const CaseDescriptor descriptor{kSchemaVersion, options.seed0 + i};
    const CaseSpec spec = generate_case(descriptor);
    ++report.cases_run;

    for (const Contract& contract : registry) {
      if (!options.contract_filter.empty() &&
          contract.name != options.contract_filter) {
        continue;
      }
      ContractStats& stats = report.contracts[contract.name];
      ContractResult result;
      try {
        result = contract.check(spec);
      } catch (const std::exception& e) {
        result = ContractResult::fail(std::string("contract threw: ") +
                                      e.what());
      }
      if (result.skipped) {
        ++stats.skip;
        continue;
      }
      if (result.pass) {
        ++stats.pass;
        continue;
      }
      ++stats.fail;

      FuzzFailure failure;
      failure.contract = contract.name;
      failure.original = spec;
      failure.shrunk = spec;
      failure.detail = result.detail;
      if (options.shrink) {
        const ShrinkResult shrunk = shrink_case(spec, contract);
        failure.shrunk = shrunk.spec;
        failure.shrink_steps = shrunk.steps;
        if (!shrunk.detail.empty()) failure.detail = shrunk.detail;
      }
      if (!options.repro_dir.empty()) {
        failure.repro_path = write_repro(options.repro_dir, failure);
      }
      report.failures.push_back(std::move(failure));
      if (report.failures.size() >= options.max_failures) {
        report.wall_s = seconds_since(t0);
        return report;
      }
    }
  }
  report.wall_s = seconds_since(t0);
  return report;
}

}  // namespace resipe::verify
