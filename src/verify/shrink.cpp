#include "resipe/verify/shrink.hpp"

#include <functional>
#include <sstream>
#include <vector>

#include "resipe/common/error.hpp"

namespace resipe::verify {
namespace {

struct Move {
  const char* name;
  /// Applies the simplification; returns false when it is a no-op on
  /// the current spec (already minimal in that dimension).
  std::function<bool(CaseSpec&)> apply;
};

bool shrink_dim(std::size_t& dim, std::size_t target, std::size_t floor) {
  target = std::max(target, floor);
  if (dim <= target) return false;
  dim = target;
  return true;
}

std::vector<Move> move_catalogue() {
  std::vector<Move> moves;
  // Geometry first: the big readability win.  For each dimension try
  // the aggressive jump to 1, then halving, then decrement — the
  // greedy loop restarts after every accepted move, so the sequence
  // composes into a near-minimal value in O(log) accepted steps.
  moves.push_back({"rows->1", [](CaseSpec& s) {
                     return shrink_dim(s.rows, 1, 1);
                   }});
  moves.push_back({"rows/2", [](CaseSpec& s) {
                     return shrink_dim(s.rows, s.rows / 2, 1);
                   }});
  moves.push_back({"rows-1", [](CaseSpec& s) {
                     return shrink_dim(s.rows, s.rows - 1, 1);
                   }});
  moves.push_back({"cols->1", [](CaseSpec& s) {
                     return shrink_dim(s.cols, 1, 1);
                   }});
  moves.push_back({"cols/2", [](CaseSpec& s) {
                     return shrink_dim(s.cols, s.cols / 2, 1);
                   }});
  moves.push_back({"cols-1", [](CaseSpec& s) {
                     return shrink_dim(s.cols, s.cols - 1, 1);
                   }});
  moves.push_back({"inputs->1", [](CaseSpec& s) {
                     return shrink_dim(s.inputs, 1, 1);
                   }});
  moves.push_back({"inputs/2", [](CaseSpec& s) {
                     return shrink_dim(s.inputs, s.inputs / 2, 1);
                   }});
  moves.push_back({"classes->1", [](CaseSpec& s) {
                     return shrink_dim(s.classes, 1, 1);
                   }});
  moves.push_back({"classes/2", [](CaseSpec& s) {
                     return shrink_dim(s.classes, s.classes / 2, 1);
                   }});
  moves.push_back({"batch->1", [](CaseSpec& s) {
                     return shrink_dim(s.batch, 1, 1);
                   }});
  moves.push_back({"drop-last-layer", [](CaseSpec& s) {
                     if (s.layers.empty()) return false;
                     s.layers.pop_back();
                     return true;
                   }});
  moves.push_back({"drop-first-layer", [](CaseSpec& s) {
                     if (s.layers.empty()) return false;
                     s.layers.erase(s.layers.begin());
                     return true;
                   }});
  moves.push_back({"halve-layer-widths", [](CaseSpec& s) {
                     bool changed = false;
                     for (std::size_t& w : s.layers) {
                       changed |= shrink_dim(w, w / 2, 1);
                     }
                     return changed;
                   }});
  // Tile geometry: keep the paired-mapping evenness invariant.
  moves.push_back({"tile_rows/2", [](CaseSpec& s) {
                     return shrink_dim(s.config.tile_rows,
                                       s.config.tile_rows / 2, 1);
                   }});
  moves.push_back({"tile_cols/2", [](CaseSpec& s) {
                     const std::size_t floor =
                         s.config.mapping ==
                                 crossbar::SignedMapping::kOffsetColumn
                             ? 1
                             : 2;
                     std::size_t half = s.config.tile_cols / 2;
                     if (half % 2 != 0 && floor == 2) ++half;
                     return shrink_dim(s.config.tile_cols, half, floor);
                   }});
  // Subsystem switches.
  moves.push_back({"reliability-off", [](CaseSpec& s) {
                     if (!s.config.reliability.enabled) return false;
                     s.config.reliability.enabled = false;
                     return true;
                   }});
  moves.push_back({"mitigation-off", [](CaseSpec& s) {
                     if (!s.config.reliability.mitigation.enabled) {
                       return false;
                     }
                     s.config.reliability.mitigation.enabled = false;
                     return true;
                   }});
  moves.push_back({"introspect-off", [](CaseSpec& s) {
                     if (!s.config.introspect.enabled) return false;
                     s.config.introspect.enabled = false;
                     return true;
                   }});
  moves.push_back({"events-off", [](CaseSpec& s) {
                     if (!s.config.events.enabled) return false;
                     s.config.events.enabled = false;
                     return true;
                   }});
  moves.push_back({"quantize-off", [](CaseSpec& s) {
                     if (!s.config.quantize_spikes) return false;
                     s.config.quantize_spikes = false;
                     return true;
                   }});
  moves.push_back({"ir-drop-off", [](CaseSpec& s) {
                     if (!s.config.model_wire_ir_drop) return false;
                     s.config.model_wire_ir_drop = false;
                     return true;
                   }});
  // Non-ideality zeroing.
  const auto zero = [](double& field) {
    if (field == 0.0) return false;
    field = 0.0;
    return true;
  };
  moves.push_back({"variation->0", [zero](CaseSpec& s) {
                     return zero(s.config.device.variation_sigma);
                   }});
  moves.push_back({"read-noise->0", [zero](CaseSpec& s) {
                     return zero(s.config.device.read_noise_sigma);
                   }});
  moves.push_back({"write-tol->0", [zero](CaseSpec& s) {
                     return zero(s.config.device.write_verify_tolerance);
                   }});
  moves.push_back({"r_on->0", [zero](CaseSpec& s) {
                     return zero(s.config.device.transistor_r_on);
                   }});
  moves.push_back({"comparator->ideal", [zero](CaseSpec& s) {
                     bool changed = zero(s.config.circuit.comparator_offset);
                     changed |= zero(s.config.circuit.comparator_delay);
                     changed |=
                         zero(s.config.circuit.comparator_offset_sigma);
                     return changed;
                   }});
  moves.push_back({"retention->0", [zero](CaseSpec& s) {
                     const bool changed = zero(s.config.retention_time);
                     if (changed) s.config.device.drift_nu = 0.0;
                     return changed;
                   }});
  moves.push_back({"serve->defaults", [](CaseSpec& s) {
                     const serve::ServeConfig defaults;
                     // Field-wise compare: ServeConfig is aggregate-only.
                     const bool already =
                         s.config.serve.queue_capacity ==
                             defaults.queue_capacity &&
                         s.config.serve.batch_max == defaults.batch_max &&
                         s.config.serve.batch_window ==
                             defaults.batch_window &&
                         s.config.serve.default_deadline ==
                             defaults.default_deadline &&
                         s.config.serve.retry_max == defaults.retry_max &&
                         s.config.serve.seed == defaults.seed;
                     if (already) return false;
                     s.config.serve = defaults;
                     return true;
                   }});
  moves.push_back({"fault-rates->0", [zero](CaseSpec& s) {
                     bool changed =
                         zero(s.config.reliability.faults.stuck_lrs_rate);
                     changed |=
                         zero(s.config.reliability.faults.stuck_hrs_rate);
                     changed |=
                         zero(s.config.reliability.faults.cluster_fraction);
                     return changed;
                   }});
  return moves;
}

bool still_fails(const Contract& contract, const CaseSpec& spec) {
  try {
    spec.config.validate();
  } catch (const std::exception&) {
    return false;  // a move produced an invalid spec: reject it
  }
  try {
    return contract.check(spec).violated();
  } catch (const std::exception&) {
    // A throwing contract is also a failure mode worth minimizing —
    // treat it as "still failing" so the reproducer stays small.
    return true;
  }
}

}  // namespace

ShrinkResult shrink_case(const CaseSpec& failing, const Contract& contract,
                         std::size_t max_attempts) {
  RESIPE_REQUIRE(still_fails(contract, failing),
                 "shrink_case needs a case that fails contract '"
                     << contract.name << "'");
  ShrinkResult result;
  result.spec = failing;
  result.attempts = 1;

  const std::vector<Move> moves = move_catalogue();
  std::ostringstream log;
  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    for (const Move& move : moves) {
      if (result.attempts >= max_attempts) break;
      CaseSpec candidate = result.spec;
      if (!move.apply(candidate)) continue;
      ++result.attempts;
      if (still_fails(contract, candidate)) {
        result.spec = std::move(candidate);
        ++result.steps;
        log << move.name << " -> " << result.spec.summary() << "\n";
        progressed = true;
        break;  // greedy restart: re-try the aggressive moves first
      }
    }
  }

  const ContractResult final_result = [&] {
    try {
      return contract.check(result.spec);
    } catch (const std::exception& e) {
      return ContractResult::fail(std::string("contract threw: ") + e.what());
    }
  }();
  result.detail = final_result.detail;
  result.log = log.str();
  return result;
}

}  // namespace resipe::verify
