#include "resipe/verify/approx.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace resipe::verify {

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  if (a == b) return 0;  // also covers -0.0 == +0.0
  if (std::signbit(a) != std::signbit(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const auto ia = std::bit_cast<std::uint64_t>(std::fabs(a));
  const auto ib = std::bit_cast<std::uint64_t>(std::fabs(b));
  return ia > ib ? ia - ib : ib - ia;
}

bool approx_rel(double a, double b, double rel_tol, double abs_tol) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // equal infinities included
  if (std::isinf(a) || std::isinf(b)) return false;
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

std::string describe_mismatch(double a, double b) {
  std::ostringstream os;
  os.precision(17);
  os << a << " vs " << b << " (abs diff " << std::fabs(a - b);
  const double mag = std::max(std::fabs(a), std::fabs(b));
  if (mag > 0.0 && std::isfinite(mag)) {
    os << ", rel " << std::fabs(a - b) / mag;
  }
  const std::uint64_t ulps = ulp_distance(a, b);
  if (ulps != std::numeric_limits<std::uint64_t>::max()) {
    os << ", " << ulps << " ulps";
  }
  os << ")";
  return os.str();
}

}  // namespace resipe::verify
