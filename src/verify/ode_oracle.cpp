#include "resipe/verify/ode_oracle.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::verify {
namespace {

// Cash-Karp tableau (RK4(5) embedded pair).
constexpr double kA2 = 1.0 / 5.0;
constexpr double kA3 = 3.0 / 10.0;
constexpr double kA4 = 3.0 / 5.0;
constexpr double kA5 = 1.0;
constexpr double kA6 = 7.0 / 8.0;

constexpr double kB21 = 1.0 / 5.0;
constexpr double kB31 = 3.0 / 40.0, kB32 = 9.0 / 40.0;
constexpr double kB41 = 3.0 / 10.0, kB42 = -9.0 / 10.0, kB43 = 6.0 / 5.0;
constexpr double kB51 = -11.0 / 54.0, kB52 = 5.0 / 2.0,
                 kB53 = -70.0 / 27.0, kB54 = 35.0 / 27.0;
constexpr double kB61 = 1631.0 / 55296.0, kB62 = 175.0 / 512.0,
                 kB63 = 575.0 / 13824.0, kB64 = 44275.0 / 110592.0,
                 kB65 = 253.0 / 4096.0;

// 5th-order solution weights.
constexpr double kC1 = 37.0 / 378.0, kC3 = 250.0 / 621.0,
                 kC4 = 125.0 / 594.0, kC6 = 512.0 / 1771.0;
// (5th - 4th)-order weight differences -> embedded error estimate.
constexpr double kD1 = kC1 - 2825.0 / 27648.0;
constexpr double kD3 = kC3 - 18575.0 / 48384.0;
constexpr double kD4 = kC4 - 13525.0 / 55296.0;
constexpr double kD5 = -277.0 / 14336.0;
constexpr double kD6 = kC6 - 1.0 / 4.0;

}  // namespace

AdaptiveOdeResult integrate_adaptive(
    const std::function<double(double, double)>& f, double v0, double t0,
    double t1, const AdaptiveOdeOptions& options) {
  RESIPE_REQUIRE(t1 >= t0, "integration interval inverted");
  RESIPE_REQUIRE(options.rel_tol > 0.0 && options.abs_tol >= 0.0,
                 "adaptive ODE tolerances must be positive");
  AdaptiveOdeResult result;
  result.value = v0;
  if (t1 == t0) return result;

  double t = t0;
  double v = v0;
  double h = options.initial_step > 0.0 ? options.initial_step
                                        : (t1 - t0) / 64.0;
  std::size_t iterations = 0;
  while (t < t1) {
    RESIPE_REQUIRE(++iterations <= options.max_steps,
                   "adaptive ODE step budget exhausted at t=" << t);
    h = std::min(h, t1 - t);

    const double k1 = f(t, v);
    const double k2 = f(t + kA2 * h, v + h * (kB21 * k1));
    const double k3 = f(t + kA3 * h, v + h * (kB31 * k1 + kB32 * k2));
    const double k4 =
        f(t + kA4 * h, v + h * (kB41 * k1 + kB42 * k2 + kB43 * k3));
    const double k5 = f(t + kA5 * h,
                        v + h * (kB51 * k1 + kB52 * k2 + kB53 * k3 +
                                 kB54 * k4));
    const double k6 = f(t + kA6 * h,
                        v + h * (kB61 * k1 + kB62 * k2 + kB63 * k3 +
                                 kB64 * k4 + kB65 * k5));

    const double v5 =
        v + h * (kC1 * k1 + kC3 * k3 + kC4 * k4 + kC6 * k6);
    const double err = std::fabs(
        h * (kD1 * k1 + kD3 * k3 + kD4 * k4 + kD5 * k5 + kD6 * k6));
    const double scale =
        options.abs_tol +
        options.rel_tol * std::max(std::fabs(v), std::fabs(v5));

    if (err <= scale || h <= (t1 - t0) * 1e-14) {
      t += h;
      v = v5;
      ++result.steps;
    } else {
      ++result.rejected;
    }

    // Proportional step control with the usual safety factor and
    // growth/shrink clamps (Numerical Recipes-style exponents).
    double factor;
    if (err == 0.0) {
      factor = 5.0;
    } else {
      factor = 0.9 * std::pow(scale / err, err <= scale ? 0.2 : 0.25);
      factor = std::clamp(factor, 0.1, 5.0);
    }
    h *= factor;
  }
  result.value = v;
  return result;
}

}  // namespace resipe::verify
