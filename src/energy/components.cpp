#include "resipe/energy/components.hpp"

#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::energy {

using namespace resipe::units;

ComponentLibrary::ComponentLibrary(Technology tech) : tech_(tech) {
  RESIPE_REQUIRE(tech_.feature_size > 0.0, "bad feature size");
  RESIPE_REQUIRE(tech_.vdd > 0.0, "bad supply voltage");
}

Component ComponentLibrary::dac(int bits) const {
  RESIPE_REQUIRE(bits >= 1 && bits <= 16, "DAC resolution out of range");
  Component c;
  c.name = std::to_string(bits) + "b DAC";
  // Current-steering DAC: area and conversion energy scale with the
  // number of unary elements; 8-bit reference point ~ 600 um^2,
  // 0.5 pJ/conv at 65 nm (ISAAC-class estimates).
  const double scale = std::pow(2.0, bits - 8);
  c.area = 1200.0 * um2 * scale;
  c.energy_per_op = 0.5 * pJ * scale;
  c.static_power = 30.0 * uW * scale;  // bias ladder while enabled
  return c;
}

Component ComponentLibrary::adc(int bits) const {
  RESIPE_REQUIRE(bits >= 1 && bits <= 16, "ADC resolution out of range");
  Component c;
  c.name = std::to_string(bits) + "b ADC";
  // [20]: 2.3 mW @ 950 MS/s, 8 bit -> 2.42 pJ/conversion; area includes
  // the sub-ranging TDC ladder and its calibration logic.
  const double scale = std::pow(2.0, bits - 8);
  c.area = 0.035 * mm2 * scale;
  c.energy_per_op = 2.42 * pJ * scale;
  c.static_power = 250.0 * uW;  // references + clocking while enabled
  return c;
}

Component ComponentLibrary::sample_hold() const {
  Component c;
  c.name = "S/H";
  c.area = 80.0 * um2;                      // switch + 30 fF hold cap
  c.energy_per_op = 30.0 * fF * tech_.vdd * tech_.vdd;  // one cap charge
  c.static_power = 0.0;
  return c;
}

Component ComponentLibrary::comparator(double bias) const {
  RESIPE_REQUIRE(bias >= 0.0, "negative comparator bias");
  Component c;
  c.name = "comparator";
  c.area = 150.0 * um2;
  c.static_power = bias;        // continuous-time bias while enabled
  c.energy_per_op = 20.0 * fJ;  // decision / output toggle
  return c;
}

Component ComponentLibrary::spike_driver() const {
  Component c;
  c.name = "spike driver";
  c.area = 12.0 * um2;
  // One line charge per spike edge pair: ~20 fF of local wire at vdd.
  c.energy_per_op = 20.0 * fF * tech_.vdd * tech_.vdd;
  return c;
}

Component ComponentLibrary::spike_modulator(int bits, double bias) const {
  RESIPE_REQUIRE(bits >= 1 && bits <= 12, "spike modulator bits");
  RESIPE_REQUIRE(bias >= 0.0, "negative modulator bias");
  Component c;
  c.name = std::to_string(bits) + "b spike modulator";
  // Counter + comparator digital block emitting up to 2^bits - 1
  // spikes per window [11, 13].
  c.area = 150.0 * um2;
  c.energy_per_op = 60.0 * fJ;  // per emitted spike
  c.static_power = bias;        // clock tree share while converting
  return c;
}

Component ComponentLibrary::integrate_fire_neuron(int counter_bits,
                                                  double bias) const {
  RESIPE_REQUIRE(counter_bits >= 1 && counter_bits <= 16, "counter bits");
  RESIPE_REQUIRE(bias >= 0.0, "negative neuron bias");
  Component c;
  c.name = "I&F neuron + " + std::to_string(counter_bits) + "b counter";
  // Membrane cap (~50 fF MIM), threshold comparator, reset switch and
  // an output spike counter.
  c.area = (60.0 + 130.0 + 10.0 +
            20.0 * static_cast<double>(counter_bits)) *
           um2;
  c.energy_per_op = 120.0 * fJ;  // fire + reset + count per output spike
  c.static_power = bias;         // comparator bias while the window runs
  return c;
}

Component ComponentLibrary::pulse_modulator(double bias) const {
  RESIPE_REQUIRE(bias >= 0.0, "negative modulator bias");
  Component c;
  c.name = "PWM pulse modulator";
  // [15]: per-row ramp + comparator + strong line driver that must hold
  // the wordline for up to a full modulation window.
  c.area = 380.0 * um2;
  c.energy_per_op = 0.9 * pJ;  // per modulated pulse
  c.static_power = bias;       // ramp + comparator + driver bias
  return c;
}

Component ComponentLibrary::integrator(double bias) const {
  RESIPE_REQUIRE(bias >= 0.0, "negative integrator bias");
  Component c;
  c.name = "column integrator";
  c.area = 300.0 * um2;  // wide-band op-amp + 200 fF integration cap
  c.static_power = bias;
  c.energy_per_op = 50.0 * fJ;  // reset per window
  return c;
}

Component ComponentLibrary::ramp_generator(double c_timing) const {
  RESIPE_REQUIRE(c_timing >= 0.0, "negative timing capacitance");
  Component c;
  c.name = "GD ramp generator";
  c.area = 400.0 * um2 + c_timing / (2.0 * fF / um2);
  // One full charge of the timing cap per slice (discharged at the
  // slice boundary through Mgd).
  c.energy_per_op = c_timing * tech_.vdd * tech_.vdd;
  c.static_power = 2.0 * uW;  // source follower bias
  return c;
}

Component ComponentLibrary::mim_capacitor(double capacitance) const {
  RESIPE_REQUIRE(capacitance >= 0.0, "negative capacitance");
  Component c;
  c.name = "MIM cap";
  c.area = capacitance / (2.0 * fF / um2);  // ~2 fF/um^2 MIM density
  return c;
}

Component ComponentLibrary::digital_logic(std::size_t gate_count) const {
  Component c;
  c.name = "digital logic (" + std::to_string(gate_count) + " gates)";
  c.area = static_cast<double>(gate_count) * 2.0 * um2;  // NAND2 ~ 2 um^2
  // 0.1 activity, ~1 fF switched per gate per active edge.
  c.energy_per_op = static_cast<double>(gate_count) * 0.1 * 1.0 * fF *
                    tech_.vdd * tech_.vdd;
  return c;
}

Component ComponentLibrary::pulse_shaper() const {
  Component c;
  c.name = "pulse shaper";
  c.area = 20.0 * um2;
  c.energy_per_op = 15.0 * fJ;  // inverter + AND toggle per spike
  return c;
}

}  // namespace resipe::energy
