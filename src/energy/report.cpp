#include "resipe/energy/report.hpp"

#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"

namespace resipe::energy {

void EnergyReport::add(const Component& component, double count, double ops,
                       double enabled_time) {
  RESIPE_REQUIRE(count >= 0.0 && ops >= 0.0 && enabled_time >= 0.0,
                 "negative accounting input for " << component.name);
  Entry e;
  e.name = component.name;
  e.energy = count * component.energy(ops, enabled_time);
  e.area = count * component.area;
  entries_.push_back(std::move(e));
}

void EnergyReport::add_raw(const std::string& name, double energy,
                           double area) {
  RESIPE_REQUIRE(energy >= 0.0 && area >= 0.0,
                 "negative raw contribution for " << name);
  entries_.push_back(Entry{name, energy, area});
}

double EnergyReport::total_energy() const {
  double e = 0.0;
  for (const auto& entry : entries_) e += entry.energy;
  return e;
}

double EnergyReport::total_area() const {
  double a = 0.0;
  for (const auto& entry : entries_) a += entry.area;
  return a;
}

double EnergyReport::average_power(double period) const {
  RESIPE_REQUIRE(period > 0.0, "period must be positive");
  return total_energy() / period;
}

double EnergyReport::energy_share(const std::string& substring) const {
  const double total = total_energy();
  if (total <= 0.0) return 0.0;
  double matched = 0.0;
  for (const auto& entry : entries_) {
    if (entry.name.find(substring) != std::string::npos) {
      matched += entry.energy;
    }
  }
  return matched / total;
}

std::string EnergyReport::breakdown() const {
  TextTable t({"Block", "Energy/MVM", "Share", "Area"});
  const double total = total_energy();
  for (const auto& e : entries_) {
    t.add_row({e.name, format_si(e.energy, "J"),
               total > 0.0 ? format_percent(e.energy / total) : "-",
               format_fixed(e.area * 1e12, 1) + " um2"});
  }
  t.add_separator();
  t.add_row({"TOTAL", format_si(total, "J"), "100.0%",
             format_fixed(total_area() * 1e12, 1) + " um2"});
  return t.str();
}

}  // namespace resipe::energy
