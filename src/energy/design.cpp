#include "resipe/energy/design.hpp"

#include "resipe/common/error.hpp"

namespace resipe::energy {

DesignPoint DesignModel::evaluate() const {
  DesignPoint p;
  p.name = name();
  const EnergyReport report = mvm_report();
  p.energy_per_mvm = report.total_energy();
  p.latency = mvm_latency();
  p.interval = initiation_interval();
  p.area = report.total_area();
  p.ops_per_mvm = 2.0 * static_cast<double>(rows() * cols());
  RESIPE_ASSERT(p.interval > 0.0 && p.latency > 0.0,
                "design timing must be positive");
  p.power = p.energy_per_mvm / p.interval;
  p.throughput = p.ops_per_mvm / p.interval;
  p.power_efficiency =
      p.energy_per_mvm > 0.0 ? p.ops_per_mvm / p.energy_per_mvm : 0.0;
  return p;
}

}  // namespace resipe::energy
