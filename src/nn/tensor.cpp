#include "resipe/nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "resipe/common/error.hpp"

namespace resipe::nn {

namespace {
std::size_t shape_product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_product(shape_), 0.0) {
  RESIPE_REQUIRE(!shape_.empty(), "tensor rank must be >= 1");
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<double> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  RESIPE_REQUIRE(!shape_.empty(), "tensor rank must be >= 1");
  RESIPE_REQUIRE(data_.size() == shape_product(shape_),
                 "data size " << data_.size() << " != shape product "
                              << shape_product(shape_));
}

std::size_t Tensor::dim(std::size_t i) const {
  RESIPE_REQUIRE(i < shape_.size(), "dim index out of range");
  return shape_[i];
}

double& Tensor::at(std::size_t i, std::size_t j) {
  RESIPE_REQUIRE(rank() == 2, "rank-2 access on " << shape_str());
  RESIPE_REQUIRE(i < shape_[0] && j < shape_[1], "2-D index out of range");
  return data_[i * shape_[1] + j];
}

double Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

double& Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) {
  RESIPE_REQUIRE(rank() == 4, "rank-4 access on " << shape_str());
  RESIPE_REQUIRE(
      n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
      "4-D index out of range");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

double Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  RESIPE_REQUIRE(shape_product(shape) == size(),
                 "reshape size mismatch: " << shape_str());
  return Tensor(std::move(shape), data_);
}

void Tensor::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::fill_normal(Rng& rng, double stddev) {
  for (double& x : data_) x = rng.normal(0.0, stddev);
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::size_t Tensor::argmax_row(std::size_t i) const {
  RESIPE_REQUIRE(rank() == 2 && i < shape_[0], "argmax_row out of range");
  const std::size_t cols = shape_[1];
  std::size_t best = 0;
  for (std::size_t j = 1; j < cols; ++j) {
    if (data_[i * cols + j] > data_[i * cols + best]) best = j;
  }
  return best;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i)
    os << (i ? ", " : "") << shape_[i];
  os << "]";
  return os.str();
}

void add_inplace(Tensor& a, const Tensor& b) {
  RESIPE_REQUIRE(a.same_shape(b), "add_inplace shape mismatch: "
                                      << a.shape_str() << " vs "
                                      << b.shape_str());
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) da[i] += db[i];
}

void scale_inplace(Tensor& a, double s) {
  for (double& x : a.data()) x *= s;
}

}  // namespace resipe::nn
