#include <cmath>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"

namespace resipe::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_({in_features, out_features}),
      b_({1, out_features}),
      gw_({in_features, out_features}),
      gb_({1, out_features}) {
  RESIPE_REQUIRE(in_features > 0 && out_features > 0, "empty dense layer");
  // He initialization — the nets use ReLU activations.
  w_.fill_normal(rng, std::sqrt(2.0 / static_cast<double>(in_features)));
}

Tensor Dense::forward(const Tensor& x, bool train) {
  RESIPE_REQUIRE(x.rank() == 2 && x.dim(1) == in_,
                 "dense input shape " << x.shape_str() << ", expected [N, "
                                      << in_ << "]");
  if (train) cached_x_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) y.at(i, j) = b_.at(0, j);
    for (std::size_t k = 0; k < in_; ++k) {
      const double xv = x.at(i, k);
      if (xv == 0.0) continue;
      for (std::size_t j = 0; j < out_; ++j) y.at(i, j) += xv * w_.at(k, j);
    }
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(cached_x_.size() > 0, "backward before forward(train)");
  RESIPE_REQUIRE(grad_out.rank() == 2 && grad_out.dim(1) == out_,
                 "dense grad shape mismatch");
  const std::size_t n = grad_out.dim(0);
  RESIPE_REQUIRE(cached_x_.dim(0) == n, "batch size changed between passes");

  // dW = x^T g ; db = sum_i g ; dx = g W^T
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      const double g = grad_out.at(i, j);
      if (g == 0.0) continue;
      gb_.at(0, j) += g;
      for (std::size_t k = 0; k < in_; ++k)
        gw_.at(k, j) += cached_x_.at(i, k) * g;
    }
  }
  Tensor gx({n, in_});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      const double g = grad_out.at(i, j);
      if (g == 0.0) continue;
      for (std::size_t k = 0; k < in_; ++k) gx.at(i, k) += g * w_.at(k, j);
    }
  }
  return gx;
}

std::vector<Param> Dense::params() {
  return {Param{&w_, &gw_}, Param{&b_, &gb_}};
}

std::string Dense::describe() const {
  std::ostringstream os;
  os << "Dense(" << in_ << " -> " << out_ << ")";
  return os.str();
}

}  // namespace resipe::nn
