#include "resipe/nn/zoo.hpp"

#include "resipe/common/error.hpp"

namespace resipe::nn {

std::string benchmark_name(BenchmarkNet net) {
  switch (net) {
    case BenchmarkNet::kMlp1: return "MLP-1";
    case BenchmarkNet::kMlp2: return "MLP-2";
    case BenchmarkNet::kCnn1: return "CNN-1 (LeNet)";
    case BenchmarkNet::kCnn2: return "CNN-2 (AlexNet-class)";
    case BenchmarkNet::kCnn3: return "CNN-3 (VGG16-class)";
    case BenchmarkNet::kCnn4: return "CNN-4 (VGG19-class)";
  }
  RESIPE_ASSERT(false, "unknown benchmark");
}

bool uses_object_dataset(BenchmarkNet net) {
  return net == BenchmarkNet::kCnn2 || net == BenchmarkNet::kCnn3 ||
         net == BenchmarkNet::kCnn4;
}

namespace {

void add_conv_block(Sequential& m, std::size_t& cin, std::size_t cout,
                    Rng& rng) {
  m.emplace<Conv2d>(cin, cout, 3, 1, 1, rng);
  m.emplace<ReLU>();
  cin = cout;
}

Sequential build_mlp1(Rng& rng) {
  Sequential m("MLP-1");
  m.emplace<Flatten>();
  m.emplace<Dense>(784, 10, rng);
  return m;
}

Sequential build_mlp2(Rng& rng) {
  Sequential m("MLP-2");
  m.emplace<Flatten>();
  m.emplace<Dense>(784, 128, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(128, 10, rng);
  return m;
}

Sequential build_lenet(Rng& rng) {
  Sequential m("CNN-1");
  m.emplace<Conv2d>(1, 6, 5, 1, 2, rng);   // 28 -> 28
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);                 // -> 14
  m.emplace<Conv2d>(6, 16, 5, 1, 0, rng);  // -> 10
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);                 // -> 5
  m.emplace<Flatten>();                    // 400
  m.emplace<Dense>(400, 120, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(120, 84, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(84, 10, rng);
  return m;
}

Sequential build_alexnet(Rng& rng) {
  // AlexNet topology scaled to 32x32: 5 conv layers, 3 pools, 2-FC head.
  Sequential m("CNN-2");
  std::size_t c = 3;
  add_conv_block(m, c, 12, rng);
  m.emplace<MaxPool2d>(2);  // 16
  add_conv_block(m, c, 24, rng);
  m.emplace<MaxPool2d>(2);  // 8
  add_conv_block(m, c, 32, rng);
  add_conv_block(m, c, 32, rng);
  add_conv_block(m, c, 24, rng);
  m.emplace<MaxPool2d>(2);  // 4
  m.emplace<Flatten>();     // 24 * 16 = 384
  m.emplace<Dense>(384, 96, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(96, 10, rng);
  return m;
}

Sequential build_vgg(std::size_t convs_per_block[5], const char* name,
                     Rng& rng) {
  // VGG topology on 32x32: five conv blocks with the original depth
  // pattern, widths reduced ~8x.  Pooling after the first four blocks
  // only (32 -> 16 -> 8 -> 4 -> 2); the fifth block convolves at 2x2,
  // leaving a 2*2*32 = 128-wide feature vector for the 3-FC head —
  // the CPU-trainable equivalent of VGG's 512-wide bottleneck.
  static constexpr std::size_t kWidths[5] = {8, 16, 24, 32, 32};
  Sequential m(name);
  std::size_t c = 3;
  for (std::size_t b = 0; b < 5; ++b) {
    for (std::size_t i = 0; i < convs_per_block[b]; ++i)
      add_conv_block(m, c, kWidths[b], rng);
    if (b < 4) m.emplace<MaxPool2d>(2);
  }
  m.emplace<Flatten>();  // 2 * 2 * 32 = 128
  m.emplace<Dense>(128, 64, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(64, 48, rng);
  m.emplace<ReLU>();
  m.emplace<Dense>(48, 10, rng);
  return m;
}

}  // namespace

Sequential build_benchmark(BenchmarkNet net, Rng& rng) {
  switch (net) {
    case BenchmarkNet::kMlp1: return build_mlp1(rng);
    case BenchmarkNet::kMlp2: return build_mlp2(rng);
    case BenchmarkNet::kCnn1: return build_lenet(rng);
    case BenchmarkNet::kCnn2: return build_alexnet(rng);
    case BenchmarkNet::kCnn3: {
      std::size_t blocks[5] = {2, 2, 3, 3, 3};  // 13 convs = VGG16
      return build_vgg(blocks, "CNN-3", rng);
    }
    case BenchmarkNet::kCnn4: {
      std::size_t blocks[5] = {2, 2, 4, 4, 4};  // 16 convs = VGG19
      return build_vgg(blocks, "CNN-4", rng);
    }
  }
  RESIPE_ASSERT(false, "unknown benchmark");
}

std::vector<BenchmarkNet> all_benchmarks() {
  return {BenchmarkNet::kMlp1, BenchmarkNet::kMlp2, BenchmarkNet::kCnn1,
          BenchmarkNet::kCnn2, BenchmarkNet::kCnn3, BenchmarkNet::kCnn4};
}

}  // namespace resipe::nn
