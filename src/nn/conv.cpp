#include <cmath>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"

namespace resipe::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      w_({out_channels, in_channels, kernel, kernel}),
      b_({1, out_channels}),
      gw_({out_channels, in_channels, kernel, kernel}),
      gb_({1, out_channels}) {
  RESIPE_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                     stride > 0,
                 "invalid conv parameters");
  const double fan_in =
      static_cast<double>(in_channels) * static_cast<double>(kernel * kernel);
  w_.fill_normal(rng, std::sqrt(2.0 / fan_in));
}

std::size_t Conv2d::out_size(std::size_t in) const {
  RESIPE_REQUIRE(in + 2 * pad_ >= k_, "conv input smaller than kernel");
  return (in + 2 * pad_ - k_) / stride_ + 1;
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  RESIPE_REQUIRE(x.rank() == 4 && x.dim(1) == cin_,
                 "conv input shape " << x.shape_str());
  if (train) cached_x_ = x;
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = out_size(h);
  const std::size_t ow = out_size(w);
  Tensor y({n, cout_, oh, ow});
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      const double bias = b_.at(0, oc);
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          double acc = bias;
          for (std::size_t ic = 0; ic < cin_; ++ic) {
            for (std::size_t kr = 0; kr < k_; ++kr) {
              const std::ptrdiff_t ir = static_cast<std::ptrdiff_t>(
                                            r * stride_ + kr) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (ir < 0 || ir >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kc = 0; kc < k_; ++kc) {
                const std::ptrdiff_t icol = static_cast<std::ptrdiff_t>(
                                                c * stride_ + kc) -
                                            static_cast<std::ptrdiff_t>(pad_);
                if (icol < 0 || icol >= static_cast<std::ptrdiff_t>(w))
                  continue;
                acc += x.at(img, ic, static_cast<std::size_t>(ir),
                            static_cast<std::size_t>(icol)) *
                       w_.at(oc, ic, kr, kc);
              }
            }
          }
          y.at(img, oc, r, c) = acc;
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(cached_x_.size() > 0, "backward before forward(train)");
  const std::size_t n = cached_x_.dim(0);
  const std::size_t h = cached_x_.dim(2);
  const std::size_t w = cached_x_.dim(3);
  const std::size_t oh = grad_out.dim(2);
  const std::size_t ow = grad_out.dim(3);
  RESIPE_REQUIRE(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                     grad_out.dim(1) == cout_ && oh == out_size(h) &&
                     ow == out_size(w),
                 "conv grad shape mismatch " << grad_out.shape_str());

  Tensor gx({n, cin_, h, w});
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t c = 0; c < ow; ++c) {
          const double g = grad_out.at(img, oc, r, c);
          if (g == 0.0) continue;
          gb_.at(0, oc) += g;
          for (std::size_t ic = 0; ic < cin_; ++ic) {
            for (std::size_t kr = 0; kr < k_; ++kr) {
              const std::ptrdiff_t ir = static_cast<std::ptrdiff_t>(
                                            r * stride_ + kr) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (ir < 0 || ir >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kc = 0; kc < k_; ++kc) {
                const std::ptrdiff_t icol = static_cast<std::ptrdiff_t>(
                                                c * stride_ + kc) -
                                            static_cast<std::ptrdiff_t>(pad_);
                if (icol < 0 || icol >= static_cast<std::ptrdiff_t>(w))
                  continue;
                const auto uir = static_cast<std::size_t>(ir);
                const auto uic = static_cast<std::size_t>(icol);
                gw_.at(oc, ic, kr, kc) += cached_x_.at(img, ic, uir, uic) * g;
                gx.at(img, ic, uir, uic) += w_.at(oc, ic, kr, kc) * g;
              }
            }
          }
        }
      }
    }
  }
  return gx;
}

std::vector<Param> Conv2d::params() {
  return {Param{&w_, &gw_}, Param{&b_, &gb_}};
}

std::string Conv2d::describe() const {
  std::ostringstream os;
  os << "Conv2d(" << cin_ << " -> " << cout_ << ", k=" << k_
     << ", s=" << stride_ << ", p=" << pad_ << ")";
  return os.str();
}

}  // namespace resipe::nn
