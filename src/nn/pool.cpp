#include <limits>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"

namespace resipe::nn {

MaxPool2d::MaxPool2d(std::size_t k) : k_(k) {
  RESIPE_REQUIRE(k >= 1, "pool window must be >= 1");
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  RESIPE_REQUIRE(x.rank() == 4, "pool input must be rank 4");
  const std::size_t n = x.dim(0);
  const std::size_t ch = x.dim(1);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  RESIPE_REQUIRE(h % k_ == 0 && w % k_ == 0,
                 "pool window " << k_ << " must divide " << h << "x" << w);
  const std::size_t oh = h / k_;
  const std::size_t ow = w / k_;
  Tensor y({n, ch, oh, ow});
  if (train) {
    cached_x_ = x;
    argmax_.assign(y.size(), 0);
  }
  std::size_t out_flat = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t c = 0; c < ch; ++c) {
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t col = 0; col < ow; ++col, ++out_flat) {
          double best = -std::numeric_limits<double>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t kr = 0; kr < k_; ++kr) {
            for (std::size_t kc = 0; kc < k_; ++kc) {
              const std::size_t ir = r * k_ + kr;
              const std::size_t ic = col * k_ + kc;
              const double v = x.at(img, c, ir, ic);
              if (v > best) {
                best = v;
                best_idx = ((img * ch + c) * h + ir) * w + ic;
              }
            }
          }
          y.at(img, c, r, col) = best;
          if (train) argmax_[out_flat] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(cached_x_.size() > 0, "backward before forward(train)");
  RESIPE_REQUIRE(grad_out.size() == argmax_.size(),
                 "pool grad size mismatch");
  Tensor gx(cached_x_.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    gx[argmax_[i]] += grad_out[i];
  return gx;
}

std::string MaxPool2d::describe() const {
  std::ostringstream os;
  os << "MaxPool2d(" << k_ << ")";
  return os.str();
}

AvgPool2d::AvgPool2d(std::size_t k) : k_(k) {
  RESIPE_REQUIRE(k >= 1, "pool window must be >= 1");
}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  RESIPE_REQUIRE(x.rank() == 4, "pool input must be rank 4");
  const std::size_t n = x.dim(0);
  const std::size_t ch = x.dim(1);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  RESIPE_REQUIRE(h % k_ == 0 && w % k_ == 0,
                 "pool window " << k_ << " must divide " << h << "x" << w);
  if (train) in_shape_ = x.shape();
  const std::size_t oh = h / k_;
  const std::size_t ow = w / k_;
  const double inv = 1.0 / static_cast<double>(k_ * k_);
  Tensor y({n, ch, oh, ow});
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t c = 0; c < ch; ++c) {
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t col = 0; col < ow; ++col) {
          double acc = 0.0;
          for (std::size_t kr = 0; kr < k_; ++kr)
            for (std::size_t kc = 0; kc < k_; ++kc)
              acc += x.at(img, c, r * k_ + kr, col * k_ + kc);
          y.at(img, c, r, col) = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(!in_shape_.empty(), "backward before forward(train)");
  Tensor gx(in_shape_);
  const std::size_t n = in_shape_[0];
  const std::size_t ch = in_shape_[1];
  const double inv = 1.0 / static_cast<double>(k_ * k_);
  const std::size_t oh = grad_out.dim(2);
  const std::size_t ow = grad_out.dim(3);
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t c = 0; c < ch; ++c) {
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t col = 0; col < ow; ++col) {
          const double g = grad_out.at(img, c, r, col) * inv;
          for (std::size_t kr = 0; kr < k_; ++kr)
            for (std::size_t kc = 0; kc < k_; ++kc)
              gx.at(img, c, r * k_ + kr, col * k_ + kc) += g;
        }
      }
    }
  }
  return gx;
}

std::string AvgPool2d::describe() const {
  std::ostringstream os;
  os << "AvgPool2d(" << k_ << ")";
  return os.str();
}

}  // namespace resipe::nn
