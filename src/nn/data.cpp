#include "resipe/nn/data.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::nn {
namespace {

// 5 x 7 bitmap font for digits 0..9; each row is 5 bits, MSB left.
constexpr unsigned char kFont[10][7] = {
    {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},  // 0
    {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},  // 1
    {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},  // 2
    {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},  // 3
    {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},  // 4
    {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},  // 5
    {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},  // 6
    {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},  // 7
    {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},  // 8
    {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},  // 9
};

// Bilinear sample of the 5 x 7 glyph at continuous coordinates.
double glyph_sample(int digit, double gx, double gy) {
  auto bit = [&](int x, int y) -> double {
    if (x < 0 || x >= 5 || y < 0 || y >= 7) return 0.0;
    return (kFont[digit][y] >> (4 - x)) & 1 ? 1.0 : 0.0;
  };
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const double fx = gx - x0;
  const double fy = gy - y0;
  return bit(x0, y0) * (1 - fx) * (1 - fy) + bit(x0 + 1, y0) * fx * (1 - fy) +
         bit(x0, y0 + 1) * (1 - fx) * fy + bit(x0 + 1, y0 + 1) * fx * fy;
}

}  // namespace

void render_digit(int digit, double dx, double dy, double intensity,
                  std::span<double> out28x28) {
  RESIPE_REQUIRE(digit >= 0 && digit <= 9, "digit out of range");
  RESIPE_REQUIRE(out28x28.size() == 28 * 28, "buffer must be 28x28");
  // The glyph body occupies ~15 x 21 pixels centered in the frame, then
  // shifted by (dx, dy).
  const double scale_x = 5.0 / 15.0;
  const double scale_y = 7.0 / 21.0;
  const double ox = (28.0 - 15.0) / 2.0 + dx;
  const double oy = (28.0 - 21.0) / 2.0 + dy;
  for (int y = 0; y < 28; ++y) {
    for (int x = 0; x < 28; ++x) {
      const double gx = (x - ox) * scale_x;
      const double gy = (y - oy) * scale_y;
      out28x28[static_cast<std::size_t>(y) * 28 + x] =
          intensity * glyph_sample(digit, gx, gy);
    }
  }
}

Dataset synthetic_digits(std::size_t n, Rng& rng) {
  RESIPE_REQUIRE(n > 0, "empty dataset requested");
  Dataset ds;
  ds.classes = 10;
  ds.images = Tensor({n, 1, 28, 28});
  ds.labels.resize(n);
  std::vector<double> frame(28 * 28);
  for (std::size_t i = 0; i < n; ++i) {
    const int digit = static_cast<int>(rng.uniform_int(0, 9));
    ds.labels[i] = digit;
    const double dx = rng.uniform(-3.0, 3.0);
    const double dy = rng.uniform(-3.0, 3.0);
    const double intensity = rng.uniform(0.6, 1.0);
    render_digit(digit, dx, dy, intensity, frame);
    for (std::size_t p = 0; p < frame.size(); ++p) {
      double v = frame[p] + rng.normal(0.0, 0.08);
      ds.images[i * frame.size() + p] = std::clamp(v, 0.0, 1.0);
    }
  }
  return ds;
}

namespace {

// Shape stencils at continuous coordinates in [-1, 1]^2; return 1.0
// inside the shape.
double shape_mask(int shape, double x, double y) {
  const double r = std::sqrt(x * x + y * y);
  switch (shape) {
    case 0:  // disc
      return r < 0.8 ? 1.0 : 0.0;
    case 1:  // square
      return (std::abs(x) < 0.7 && std::abs(y) < 0.7) ? 1.0 : 0.0;
    case 2:  // triangle (upward)
      return (y > -0.7 && y < 0.8 && std::abs(x) < (0.8 - y) * 0.55) ? 1.0
                                                                     : 0.0;
    case 3:  // cross
      return (std::abs(x) < 0.25 || std::abs(y) < 0.25) &&
                     (std::abs(x) < 0.85 && std::abs(y) < 0.85)
                 ? 1.0
                 : 0.0;
    case 4:  // ring
      return (r < 0.85 && r > 0.45) ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

}  // namespace

Dataset synthetic_objects(std::size_t n, Rng& rng) {
  RESIPE_REQUIRE(n > 0, "empty dataset requested");
  // 10 classes = 5 shapes x 2 palettes.
  static constexpr double kPalette[2][3] = {{0.95, 0.25, 0.2},
                                            {0.2, 0.45, 0.95}};
  Dataset ds;
  ds.classes = 10;
  ds.images = Tensor({n, 3, 32, 32});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.uniform_int(0, 9));
    ds.labels[i] = cls;
    const int shape = cls % 5;
    const int palette = cls / 5;
    const double cx = rng.uniform(10.0, 22.0);
    const double cy = rng.uniform(10.0, 22.0);
    const double half = rng.uniform(5.0, 10.0);
    const double bg = rng.uniform(0.0, 0.25);
    // Mild hue jitter keeps color an informative but imperfect cue.
    double color[3];
    for (int c = 0; c < 3; ++c) {
      color[c] =
          std::clamp(kPalette[palette][c] + rng.normal(0.0, 0.05), 0.0, 1.0);
    }
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        const double u = (x - cx) / half;
        const double v = (y - cy) / half;
        const double m = shape_mask(shape, u, v);
        for (int c = 0; c < 3; ++c) {
          double val = m > 0.0 ? color[c] : bg;
          val += rng.normal(0.0, 0.06);
          ds.images.at(i, static_cast<std::size_t>(c),
                       static_cast<std::size_t>(y),
                       static_cast<std::size_t>(x)) =
              std::clamp(val, 0.0, 1.0);
        }
      }
    }
  }
  return ds;
}

}  // namespace resipe::nn
