#include "resipe/nn/train.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "resipe/common/error.hpp"
#include "resipe/common/rng.hpp"

namespace resipe::nn {

Tensor softmax(const Tensor& logits) {
  RESIPE_REQUIRE(logits.rank() == 2, "softmax expects rank-2 logits");
  const std::size_t n = logits.dim(0);
  const std::size_t k = logits.dim(1);
  Tensor p({n, k});
  for (std::size_t i = 0; i < n; ++i) {
    double max_v = logits.at(i, 0);
    for (std::size_t j = 1; j < k; ++j) max_v = std::max(max_v, logits.at(i, j));
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double e = std::exp(logits.at(i, j) - max_v);
      p.at(i, j) = e;
      sum += e;
    }
    for (std::size_t j = 0; j < k; ++j) p.at(i, j) /= sum;
  }
  return p;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  RESIPE_REQUIRE(logits.rank() == 2 && logits.dim(0) == labels.size(),
                 "loss batch mismatch");
  const std::size_t n = logits.dim(0);
  const std::size_t k = logits.dim(1);
  LossResult res;
  res.grad = softmax(logits);
  double loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    RESIPE_REQUIRE(y >= 0 && static_cast<std::size_t>(y) < k,
                   "label " << y << " out of range for " << k << " classes");
    const double p = std::max(res.grad.at(i, static_cast<std::size_t>(y)),
                              1e-12);
    loss -= std::log(p);
    res.grad.at(i, static_cast<std::size_t>(y)) -= 1.0;
  }
  scale_inplace(res.grad, inv_n);
  res.loss = loss * inv_n;
  return res;
}

double accuracy(const Tensor& logits, std::span<const int> labels) {
  RESIPE_REQUIRE(logits.rank() == 2 && logits.dim(0) == labels.size(),
                 "accuracy batch mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (logits.argmax_row(i) == static_cast<std::size_t>(labels[i]))
      ++correct;
  }
  return labels.empty()
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(labels.size());
}

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  RESIPE_REQUIRE(lr > 0.0, "learning rate must be positive");
}

void Sgd::step(std::span<const Param> params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const Param& p : params)
      velocity_.emplace_back(p.value->size(), 0.0);
  }
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto w = params[pi].value->data();
    auto g = params[pi].grad->data();
    auto& vel = velocity_[pi];
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double grad = g[i] + weight_decay_ * w[i];
      vel[i] = momentum_ * vel[i] - lr_ * grad;
      w[i] += vel[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  RESIPE_REQUIRE(lr > 0.0, "learning rate must be positive");
}

void Adam::step(std::span<const Param> params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const Param& p : params) {
      m_.emplace_back(p.value->size(), 0.0);
      v_.emplace_back(p.value->size(), 0.0);
    }
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto w = params[pi].value->data();
    auto g = params[pi].grad->data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      m_[pi][i] = beta1_ * m_[pi][i] + (1.0 - beta1_) * g[i];
      v_[pi][i] = beta2_ * v_[pi][i] + (1.0 - beta2_) * g[i] * g[i];
      const double mh = m_[pi][i] / bc1;
      const double vh = v_[pi][i] / bc2;
      w[i] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
  }
}

std::pair<Tensor, std::vector<int>> Dataset::gather(
    std::span<const std::size_t> indices) const {
  RESIPE_REQUIRE(images.rank() >= 2, "dataset images must be rank >= 2");
  const std::size_t per_sample = images.size() / images.dim(0);
  std::vector<std::size_t> shape = images.shape();
  shape[0] = indices.size();
  Tensor batch(shape);
  std::vector<int> ys(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t idx = indices[b];
    RESIPE_REQUIRE(idx < size(), "sample index out of range");
    for (std::size_t k = 0; k < per_sample; ++k)
      batch[b * per_sample + k] = images[idx * per_sample + k];
    ys[b] = labels[idx];
  }
  return {std::move(batch), std::move(ys)};
}

TrainResult fit(Sequential& model, const Dataset& train, const Dataset& test,
                const TrainConfig& config) {
  RESIPE_REQUIRE(train.size() > 0, "empty training set");
  RESIPE_REQUIRE(config.weight_noise_sigma >= 0.0,
                 "negative weight noise sigma");
  Adam opt(config.lr);
  Rng rng(config.shuffle_seed);
  Rng noise_rng(config.shuffle_seed ^ 0xA5A5A5A5ull);
  TrainResult result;
  std::vector<std::vector<double>> clean_weights;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(train.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      const std::span<const std::size_t> idx(order.data() + start,
                                             end - start);
      auto [batch, ys] = train.gather(idx);
      model.zero_grads();

      const auto params = model.params();
      if (config.weight_noise_sigma > 0.0) {
        // Snapshot clean weights, perturb for this pass.
        clean_weights.resize(params.size());
        for (std::size_t p = 0; p < params.size(); ++p) {
          auto w = params[p].value->data();
          clean_weights[p].assign(w.begin(), w.end());
          for (double& v : w) {
            v *= 1.0 + noise_rng.normal(0.0, config.weight_noise_sigma);
          }
        }
      }

      const Tensor logits = model.forward(batch, /*train=*/true);
      const LossResult loss = softmax_cross_entropy(logits, ys);
      model.backward(loss.grad);

      if (config.weight_noise_sigma > 0.0) {
        // Restore the clean weights; the gradients were computed at
        // the perturbed point (straight-through, [22]-style).
        for (std::size_t p = 0; p < params.size(); ++p) {
          auto w = params[p].value->data();
          std::copy(clean_weights[p].begin(), clean_weights[p].end(),
                    w.begin());
        }
      }
      opt.step(params);
      epoch_loss += loss.loss;
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));
    result.epoch_loss.push_back(epoch_loss);
    if (config.verbose) {
      std::printf("  epoch %zu/%zu loss %.4f\n", epoch + 1, config.epochs,
                  epoch_loss);
    }
  }
  result.train_accuracy = evaluate(model, train);
  result.test_accuracy = test.size() > 0 ? evaluate(model, test) : 0.0;
  return result;
}

double evaluate(Sequential& model, const Dataset& data,
                std::size_t batch_size) {
  return evaluate_with(
      data,
      [&model](const Tensor& batch) {
        return model.forward(batch, /*train=*/false);
      },
      batch_size);
}

double evaluate_with(
    const Dataset& data,
    const std::function<Tensor(const Tensor&)>& batch_logits,
    std::size_t batch_size) {
  RESIPE_REQUIRE(batch_size > 0, "batch size must be positive");
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, data.size());
    idx.clear();
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    auto [batch, ys] = data.gather(idx);
    const Tensor logits = batch_logits(batch);
    for (std::size_t i = 0; i < ys.size(); ++i) {
      if (logits.argmax_row(i) == static_cast<std::size_t>(ys[i])) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace resipe::nn
