#include <sstream>
#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"

namespace resipe::nn {

Tensor ReLU::forward(const Tensor& x, bool train) {
  if (train) cached_x_ = x;
  Tensor y = x;
  for (double& v : y.data()) v = v > 0.0 ? v : 0.0;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(cached_x_.size() > 0, "backward before forward(train)");
  RESIPE_REQUIRE(grad_out.same_shape(cached_x_), "relu grad shape mismatch");
  Tensor gx = grad_out;
  auto gd = gx.data();
  auto xd = cached_x_.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    if (xd[i] <= 0.0) gd[i] = 0.0;
  }
  return gx;
}

std::string ReLU::describe() const { return "ReLU"; }

Dropout::Dropout(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  RESIPE_REQUIRE(rate >= 0.0 && rate < 1.0, "dropout rate out of [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || rate_ == 0.0) {
    // Eval-mode forwards run concurrently on a shared model; only a
    // training pass (always single-threaded) may touch layer state.
    if (train) mask_.clear();
    return x;
  }
  Tensor y = x;
  mask_.assign(x.size(), 0.0);
  const double keep = 1.0 - rate_;
  auto yd = y.data();
  for (std::size_t i = 0; i < yd.size(); ++i) {
    // Inverted dropout keeps the expected activation unchanged.
    mask_[i] = rng_.bernoulli(keep) ? 1.0 / keep : 0.0;
    yd[i] *= mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(!mask_.empty(), "backward before forward(train)");
  RESIPE_REQUIRE(grad_out.size() == mask_.size(),
                 "dropout grad size mismatch");
  Tensor gx = grad_out;
  auto gd = gx.data();
  for (std::size_t i = 0; i < gd.size(); ++i) gd[i] *= mask_[i];
  return gx;
}

std::string Dropout::describe() const {
  std::ostringstream os;
  os << "Dropout(" << rate_ << ")";
  return os.str();
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  // Only the training pass records the input shape (backward's only
  // consumer): eval-mode forwards run concurrently on a shared model
  // and must not write layer state.
  if (train) in_shape_ = x.shape();
  const std::size_t n = x.dim(0);
  return x.reshaped({n, x.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(!in_shape_.empty(), "backward before forward");
  return grad_out.reshaped(in_shape_);
}

std::string Flatten::describe() const { return "Flatten"; }

}  // namespace resipe::nn
