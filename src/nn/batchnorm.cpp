#include <cmath>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/nn/layers.hpp"

namespace resipe::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, double momentum, double eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({1, channels}),
      beta_({1, channels}),
      g_gamma_({1, channels}),
      g_beta_({1, channels}),
      running_mean_({1, channels}),
      running_var_({1, channels}) {
  RESIPE_REQUIRE(channels > 0, "batchnorm needs at least one channel");
  RESIPE_REQUIRE(momentum > 0.0 && momentum <= 1.0,
                 "batchnorm momentum out of (0, 1]");
  RESIPE_REQUIRE(eps > 0.0, "batchnorm eps must be positive");
  gamma_.fill(1.0);
  running_var_.fill(1.0);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  RESIPE_REQUIRE(x.rank() == 4 && x.dim(1) == channels_,
                 "batchnorm input shape " << x.shape_str());
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const double count = static_cast<double>(n * h * w);

  std::vector<double> mean(channels_, 0.0);
  std::vector<double> var(channels_, 0.0);
  if (train) {
    for (std::size_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (std::size_t img = 0; img < n; ++img)
        for (std::size_t r = 0; r < h; ++r)
          for (std::size_t col = 0; col < w; ++col)
            sum += x.at(img, c, r, col);
      mean[c] = sum / count;
      double ss = 0.0;
      for (std::size_t img = 0; img < n; ++img)
        for (std::size_t r = 0; r < h; ++r)
          for (std::size_t col = 0; col < w; ++col) {
            const double d = x.at(img, c, r, col) - mean[c];
            ss += d * d;
          }
      var[c] = ss / count;
      running_mean_.at(0, c) =
          (1.0 - momentum_) * running_mean_.at(0, c) + momentum_ * mean[c];
      running_var_.at(0, c) =
          (1.0 - momentum_) * running_var_.at(0, c) + momentum_ * var[c];
    }
    batch_mean_ = mean;
    batch_var_ = var;
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_.at(0, c);
      var[c] = running_var_.at(0, c);
    }
  }

  Tensor y(x.shape());
  Tensor xhat(x.shape());
  for (std::size_t c = 0; c < channels_; ++c) {
    const double inv_std = 1.0 / std::sqrt(var[c] + eps_);
    const double g = gamma_.at(0, c);
    const double b = beta_.at(0, c);
    for (std::size_t img = 0; img < n; ++img) {
      for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t col = 0; col < w; ++col) {
          const double xn = (x.at(img, c, r, col) - mean[c]) * inv_std;
          xhat.at(img, c, r, col) = xn;
          y.at(img, c, r, col) = g * xn + b;
        }
      }
    }
  }
  if (train) cached_xhat_ = std::move(xhat);
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  RESIPE_REQUIRE(cached_xhat_.size() > 0, "backward before forward(train)");
  RESIPE_REQUIRE(grad_out.same_shape(cached_xhat_),
                 "batchnorm grad shape mismatch");
  const std::size_t n = grad_out.dim(0);
  const std::size_t h = grad_out.dim(2);
  const std::size_t w = grad_out.dim(3);
  const double count = static_cast<double>(n * h * w);

  Tensor gx(grad_out.shape());
  for (std::size_t c = 0; c < channels_; ++c) {
    const double inv_std = 1.0 / std::sqrt(batch_var_[c] + eps_);
    const double g = gamma_.at(0, c);
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (std::size_t img = 0; img < n; ++img) {
      for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t col = 0; col < w; ++col) {
          const double dy = grad_out.at(img, c, r, col);
          sum_dy += dy;
          sum_dy_xhat += dy * cached_xhat_.at(img, c, r, col);
        }
      }
    }
    g_gamma_.at(0, c) += sum_dy_xhat;
    g_beta_.at(0, c) += sum_dy;
    // dx = gamma*inv_std/count * (count*dy - sum(dy) - xhat*sum(dy*xhat))
    for (std::size_t img = 0; img < n; ++img) {
      for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t col = 0; col < w; ++col) {
          const double dy = grad_out.at(img, c, r, col);
          const double xn = cached_xhat_.at(img, c, r, col);
          gx.at(img, c, r, col) =
              g * inv_std / count *
              (count * dy - sum_dy - xn * sum_dy_xhat);
        }
      }
    }
  }
  return gx;
}

std::vector<Param> BatchNorm2d::params() {
  return {Param{&gamma_, &g_gamma_}, Param{&beta_, &g_beta_}};
}

std::string BatchNorm2d::describe() const {
  std::ostringstream os;
  os << "BatchNorm2d(" << channels_ << ")";
  return os.str();
}

double BatchNorm2d::effective_scale(std::size_t c) const {
  RESIPE_REQUIRE(c < channels_, "channel out of range");
  return gamma_.at(0, c) / std::sqrt(running_var_.at(0, c) + eps_);
}

double BatchNorm2d::effective_shift(std::size_t c) const {
  RESIPE_REQUIRE(c < channels_, "channel out of range");
  return beta_.at(0, c) - effective_scale(c) * running_mean_.at(0, c);
}

}  // namespace resipe::nn
