#include "resipe/nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "resipe/common/error.hpp"

namespace resipe::nn {
namespace {

constexpr std::uint64_t kMagic = 0x5245534950455731ull;  // "RESIPEW1"

std::vector<std::uint64_t> layout(Sequential& model) {
  std::vector<std::uint64_t> sizes;
  for (const Param& p : model.params()) sizes.push_back(p.value->size());
  return sizes;
}

}  // namespace

void save_weights(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  RESIPE_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  const auto sizes = layout(model);
  const std::uint64_t count = sizes.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (std::uint64_t s : sizes)
    out.write(reinterpret_cast<const char*>(&s), sizeof s);
  for (const Param& p : model.params()) {
    const auto data = p.value->data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(double)));
  }
  RESIPE_REQUIRE(out.good(), "write to '" << path << "' failed");
}

namespace {

bool read_header(std::ifstream& in, std::vector<std::uint64_t>& sizes) {
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in.good() || magic != kMagic || count > 1u << 20) return false;
  sizes.resize(count);
  for (auto& s : sizes) {
    in.read(reinterpret_cast<char*>(&s), sizeof s);
    if (!in.good()) return false;
  }
  return true;
}

}  // namespace

void load_weights(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RESIPE_REQUIRE(in.good(), "cannot open '" << path << "' for reading");
  std::vector<std::uint64_t> sizes;
  RESIPE_REQUIRE(read_header(in, sizes), "corrupt weight file '" << path
                                                                 << "'");
  const auto expect = layout(model);
  RESIPE_REQUIRE(sizes == expect,
                 "weight file '" << path
                                 << "' does not match model architecture");
  for (const Param& p : model.params()) {
    auto data = p.value->data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
    RESIPE_REQUIRE(in.good(), "truncated weight file '" << path << "'");
  }
}

bool weights_compatible(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::vector<std::uint64_t> sizes;
  if (!read_header(in, sizes)) return false;
  return sizes == layout(model);
}

}  // namespace resipe::nn
