#include "resipe/nn/model.hpp"
#include <cmath>

#include <sstream>

#include "resipe/common/error.hpp"

namespace resipe::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  RESIPE_REQUIRE(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, train);
  return h;
}

void Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
}

std::vector<Param> Sequential::params() {
  std::vector<Param> out;
  for (auto& layer : layers_) {
    for (const Param& p : layer->params()) out.push_back(p);
  }
  return out;
}

void Sequential::zero_grads() {
  for (const Param& p : params()) p.grad->fill(0.0);
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (const Param& p : params()) n += p.value->size();
  return n;
}

Layer& Sequential::layer(std::size_t i) {
  RESIPE_REQUIRE(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

std::string Sequential::summary() {
  std::ostringstream os;
  os << name_ << " (" << parameter_count() << " parameters)\n";
  for (std::size_t i = 0; i < layers_.size(); ++i)
    os << "  [" << i << "] " << layers_[i]->describe() << "\n";
  return os.str();
}

std::size_t fold_batchnorm(Sequential& model) {
  std::size_t folded = 0;
  for (std::size_t i = 0; i + 1 < model.layer_count(); ++i) {
    auto* conv = dynamic_cast<Conv2d*>(&model.layer(i));
    auto* bn = dynamic_cast<BatchNorm2d*>(&model.layer(i + 1));
    if (conv == nullptr || bn == nullptr) continue;
    RESIPE_REQUIRE(bn->channels() == conv->out_channels(),
                   "batchnorm channel count does not match the conv");
    Tensor& w = conv->weights();
    Tensor& b = conv->bias();
    const std::size_t cin = conv->in_channels();
    const std::size_t k = conv->kernel();
    for (std::size_t oc = 0; oc < conv->out_channels(); ++oc) {
      const double scale = bn->effective_scale(oc);
      const double shift = bn->effective_shift(oc);
      for (std::size_t ic = 0; ic < cin; ++ic)
        for (std::size_t kr = 0; kr < k; ++kr)
          for (std::size_t kc = 0; kc < k; ++kc)
            w.at(oc, ic, kr, kc) *= scale;
      b.at(0, oc) = scale * b.at(0, oc) + shift;
      // Reset the BN to an exact identity at inference: with
      // gamma = sqrt(var + eps) and beta = mean, (x - mean)/std * gamma
      // + beta == x.
      bn->gamma().at(0, oc) =
          std::sqrt(bn->running_var().at(0, oc) + bn->eps());
      bn->beta().at(0, oc) = bn->running_mean().at(0, oc);
    }
    ++folded;
  }
  return folded;
}

std::size_t Sequential::matrix_layer_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    if (layer->is_matrix_layer()) ++n;
  }
  return n;
}

}  // namespace resipe::nn
