// Machine fingerprint + one-shot STREAM / peak-FLOPs calibration.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "resipe/perf/roofline.hpp"
#include "resipe/telemetry/timer.hpp"

namespace resipe::perf {

namespace {

std::string cpu_model_name() {
#if defined(__linux__)
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
#endif
  return "unknown";
}

std::string fnv1a_hex(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char ch : s) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// Keeps the calibration loops from being folded away without paying a
// volatile store inside them.
void consume(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

/// Peak-FLOPs micro-bench: 8 independent multiply-add chains, so the
/// loop is bound by FMA throughput rather than latency.  Returns
/// GFLOP/s of the best repetition inside the time budget.
double peak_flops_bench(double ms_budget) {
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kIters = 1 << 16;
  double acc[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    acc[l] = 1.0 + 1e-9 * static_cast<double>(l);
  }
  const double m = 1.0000000001;
  const double a = 1e-12;
  double best = 0.0;
  const std::uint64_t deadline =
      telemetry::now_ns() + static_cast<std::uint64_t>(ms_budget * 1e6);
  do {
    const std::uint64_t t0 = telemetry::now_ns();
    for (std::size_t i = 0; i < kIters; ++i) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        acc[l] = acc[l] * m + a;
      }
    }
    consume(acc);
    const std::uint64_t dt = telemetry::now_ns() - t0;
    if (dt > 0) {
      const double flops =
          2.0 * static_cast<double>(kLanes) * static_cast<double>(kIters);
      best = std::max(best, flops / static_cast<double>(dt));
    }
  } while (telemetry::now_ns() < deadline);
  return best;  // flops/ns == GFLOP/s
}

/// STREAM-triad bandwidth: a[i] = b[i] + s * c[i] over arrays sized
/// well past LLC.  Counts 24 bytes per element (two loads, one store;
/// write-allocate traffic not charged, the usual STREAM convention).
double stream_bench(double ms_budget, std::size_t n) {
  std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  const double s = 3.0;
  double best = 0.0;
  const std::uint64_t deadline =
      telemetry::now_ns() + static_cast<std::uint64_t>(ms_budget * 1e6);
  do {
    const std::uint64_t t0 = telemetry::now_ns();
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
    consume(a.data());
    const std::uint64_t dt = telemetry::now_ns() - t0;
    if (dt > 0) {
      const double bytes = 24.0 * static_cast<double>(n);
      best = std::max(best, bytes / static_cast<double>(dt));
    }
    std::swap(a, b);  // keep the store stream moving between arrays
  } while (telemetry::now_ns() < deadline);
  return best;  // bytes/ns == GB/s
}

}  // namespace

std::string machine_fingerprint() {
  return cpu_model_name() + ";cores=" +
         std::to_string(std::thread::hardware_concurrency()) + ";word=8";
}

MachineProfile calibrate_machine(double ms_per_bench,
                                 std::size_t stream_doubles) {
  MachineProfile p;
  p.cpu_model = cpu_model_name();
  p.cores = std::thread::hardware_concurrency();
  p.fingerprint = machine_fingerprint();
  p.fingerprint_hash = fnv1a_hex(p.fingerprint);
  p.peak_gflops = peak_flops_bench(ms_per_bench);
  p.peak_gbs = stream_bench(ms_per_bench, stream_doubles);
  return p;
}

}  // namespace resipe::perf
