// Roofline report assembly, JSON/ASCII rendering, folded-stack export
// and the work-annotated call-tree profile.
#include "resipe/perf/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "resipe/common/error.hpp"
#include "resipe/common/table.hpp"

namespace resipe::perf {

namespace {

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    if (ch == '\n') {
      os << "\\n";
      continue;
    }
    os << ch;
  }
  os << '"';
}

std::string rate3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

RooflineReport build_roofline_report(const MachineProfile& machine,
                                     const PerfCounts& counters) {
  RooflineReport report;
  report.machine = machine;
  report.counters = counters;
  for (const KernelWorkSnapshot& k : WorkRegistry::instance().snapshot()) {
    if (k.flops == 0.0 && k.bytes == 0.0) continue;
    KernelRates r;
    r.name = k.name;
    r.calls = k.calls;
    r.flops = k.flops;
    r.bytes = k.bytes;
    r.seconds = static_cast<double>(k.timed_ns) * 1e-9;
    r.timed = k.timed_ns > 0;
    r.intensity = k.bytes > 0.0 ? k.flops / k.bytes : 0.0;
    if (r.timed) {
      r.gflops = k.flops / static_cast<double>(k.timed_ns);
      r.gbs = k.bytes / static_cast<double>(k.timed_ns);
    }
    r.memory_bound =
        machine.ridge() > 0.0 && r.intensity < machine.ridge();
    if (machine.peak_gflops > 0.0 && machine.peak_gbs > 0.0) {
      r.attainable_gflops =
          std::min(machine.peak_gflops, r.intensity * machine.peak_gbs);
      if (r.timed && r.attainable_gflops > 0.0) {
        r.efficiency = r.gflops / r.attainable_gflops;
      }
    }
    report.kernels.push_back(std::move(r));
  }
  return report;
}

std::string RooflineReport::render_ascii() const {
  std::ostringstream os;
  os << "== roofline ==\n";
  os << "machine: " << machine.cpu_model << " (" << machine.cores
     << " hw threads), peak " << rate3(machine.peak_gflops)
     << " GFLOP/s, " << rate3(machine.peak_gbs) << " GB/s, ridge "
     << rate3(machine.ridge()) << " FLOP/byte\n";
  if (counters.available) {
    os << "counters: IPC " << rate3(counters.ipc()) << ", "
       << rate3(counters.ghz()) << " GHz, cache-miss rate "
       << rate3(counters.cache_miss_rate()) << ", branch misses "
       << number(counters.branch_misses) << "\n";
  } else if (!counters.detail.empty()) {
    os << "counters: unavailable (" << counters.detail
       << "); wall-clock only\n";
  } else {
    os << "counters: not collected\n";
  }

  TextTable table({"kernel", "calls", "time", "GFLOP/s", "GB/s",
                   "FLOP/byte", "bound", "roof%"});
  for (const KernelRates& k : kernels) {
    table.add_row(
        {k.name, std::to_string(k.calls),
         k.timed ? format_si(k.seconds, "s") : "(untimed)",
         k.timed ? rate3(k.gflops) : "-", k.timed ? rate3(k.gbs) : "-",
         rate3(k.intensity), k.memory_bound ? "memory" : "compute",
         k.timed && k.attainable_gflops > 0.0
             ? format_percent(k.efficiency)
             : "-"});
  }
  os << table.str();

  // Log-log scatter: x = arithmetic intensity, y = GFLOP/s; '=' draws
  // the machine roof (bandwidth slope up to the ridge, flat after).
  const double ridge = machine.ridge();
  std::vector<const KernelRates*> plotted;
  for (const KernelRates& k : kernels) {
    if (k.timed && k.gflops > 0.0 && k.intensity > 0.0) {
      plotted.push_back(&k);
    }
  }
  if (!plotted.empty() && machine.peak_gflops > 0.0 && ridge > 0.0) {
    constexpr int kW = 64;
    constexpr int kH = 16;
    double x_min = ridge, x_max = ridge;
    double y_max = machine.peak_gflops;
    for (const KernelRates* k : plotted) {
      x_min = std::min(x_min, k->intensity);
      x_max = std::max(x_max, k->intensity);
      y_max = std::max(y_max, k->gflops);
    }
    x_min /= 2.0;
    x_max *= 2.0;
    const double y_min = y_max / 1e6;
    const double lx0 = std::log10(x_min), lx1 = std::log10(x_max);
    const double ly0 = std::log10(y_min), ly1 = std::log10(y_max * 2.0);
    std::vector<std::string> grid(kH, std::string(kW, ' '));
    auto col_of = [&](double x) {
      return std::clamp(static_cast<int>((std::log10(x) - lx0) /
                                         (lx1 - lx0) * (kW - 1)),
                        0, kW - 1);
    };
    auto row_of = [&](double y) {
      const int r = static_cast<int>((std::log10(std::max(y, y_min)) -
                                      ly0) /
                                     (ly1 - ly0) * (kH - 1));
      return kH - 1 - std::clamp(r, 0, kH - 1);
    };
    for (int cidx = 0; cidx < kW; ++cidx) {
      const double x =
          std::pow(10.0, lx0 + (lx1 - lx0) * cidx / (kW - 1));
      const double roof = std::min(machine.peak_gflops,
                                   x * machine.peak_gbs);
      grid[static_cast<std::size_t>(row_of(roof))]
          [static_cast<std::size_t>(cidx)] = '=';
    }
    char marker = 'A';
    os << "\n  roofline chart (x: FLOP/byte, y: GFLOP/s, log-log; "
          "'=' machine roof)\n";
    std::ostringstream legend;
    for (const KernelRates* k : plotted) {
      grid[static_cast<std::size_t>(row_of(k->gflops))]
          [static_cast<std::size_t>(col_of(k->intensity))] = marker;
      legend << "    " << marker << " = " << k->name << "\n";
      if (marker < 'Z') ++marker;
    }
    for (const std::string& line : grid) os << "  |" << line << "\n";
    os << "  +" << std::string(kW, '-') << "\n";
    os << legend.str();
  }
  return os.str();
}

void RooflineReport::write_json(std::ostream& os) const {
  os << "{\"machine\":{\"cpu_model\":";
  json_string(os, machine.cpu_model);
  os << ",\"cores\":" << machine.cores << ",\"fingerprint\":";
  json_string(os, machine.fingerprint);
  os << ",\"fingerprint_hash\":";
  json_string(os, machine.fingerprint_hash);
  os << ",\"peak_gflops\":" << number(machine.peak_gflops)
     << ",\"peak_gbs\":" << number(machine.peak_gbs)
     << ",\"ridge_flop_per_byte\":" << number(machine.ridge()) << "}";
  os << ",\"counters\":{\"available\":"
     << (counters.available ? "true" : "false") << ",\"detail\":";
  json_string(os, counters.detail);
  os << ",\"wall_ns\":" << number(counters.wall_ns)
     << ",\"cycles\":" << number(counters.cycles)
     << ",\"instructions\":" << number(counters.instructions)
     << ",\"ipc\":" << number(counters.ipc())
     << ",\"cache_references\":" << number(counters.cache_references)
     << ",\"cache_misses\":" << number(counters.cache_misses)
     << ",\"cache_miss_rate\":" << number(counters.cache_miss_rate())
     << ",\"branch_misses\":" << number(counters.branch_misses) << "}";
  os << ",\"kernels\":[";
  bool first = true;
  for (const KernelRates& k : kernels) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_string(os, k.name);
    os << ",\"calls\":" << k.calls << ",\"seconds\":" << number(k.seconds)
       << ",\"flops\":" << number(k.flops)
       << ",\"bytes\":" << number(k.bytes)
       << ",\"timed\":" << (k.timed ? "true" : "false")
       << ",\"gflops\":" << number(k.gflops)
       << ",\"gbs\":" << number(k.gbs)
       << ",\"intensity_flop_per_byte\":" << number(k.intensity)
       << ",\"bound\":\"" << (k.memory_bound ? "memory" : "compute")
       << "\",\"attainable_gflops\":" << number(k.attainable_gflops)
       << ",\"roofline_efficiency\":" << number(k.efficiency) << "}";
  }
  os << "]}\n";
}

void RooflineReport::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open roofline file " << path);
  write_json(os);
  RESIPE_REQUIRE(os.good(), "failed writing roofline file " << path);
}

// --- folded stacks -----------------------------------------------------

namespace {

void fold_node(const telemetry::ProfileNode& node, std::string prefix,
               std::ostringstream& os) {
  prefix += node.name;
  std::uint64_t child_ns = 0;
  for (const auto& c : node.children) child_ns += c->total_ns;
  // Self time in integer microseconds; flamegraph.pl wants integral
  // sample counts, and ns-scale spans would round to 0 and vanish, so
  // clamp any nonzero self time to at least 1.
  const std::uint64_t self_ns =
      node.total_ns > child_ns ? node.total_ns - child_ns : 0;
  if (self_ns > 0) {
    os << prefix << " " << std::max<std::uint64_t>(self_ns / 1000, 1)
       << "\n";
  }
  for (const auto& c : node.children) fold_node(*c, prefix + ";", os);
}

}  // namespace

std::string folded_stacks(const telemetry::CallProfile& profile) {
  std::ostringstream os;
  for (const auto& c : profile.root().children) fold_node(*c, "", os);
  return os.str();
}

void write_folded_stacks_file(const std::string& path,
                              const telemetry::CallProfile& profile) {
  std::ofstream os(path);
  RESIPE_REQUIRE(os.good(), "cannot open folded-stack file " << path);
  os << folded_stacks(profile);
  RESIPE_REQUIRE(os.good(), "failed writing folded-stack file " << path);
}

// --- annotated call tree -----------------------------------------------

namespace {

struct MeanCost {
  double flops_per_call = 0.0;
  double bytes_per_call = 0.0;
};

void render_annotated(
    const telemetry::ProfileNode& node, std::size_t depth,
    const std::map<std::string, MeanCost>& costs, std::ostringstream& os) {
  const double total_s = static_cast<double>(node.total_ns) * 1e-9;
  const double mean_s =
      node.count > 0 ? total_s / static_cast<double>(node.count) : 0.0;
  os << std::string(2 * depth, ' ') << node.name << "  x" << node.count
     << "  total " << format_si(total_s, "s") << "  mean "
     << format_si(mean_s, "s");
  const auto it = costs.find(node.name);
  if (it != costs.end() && node.total_ns > 0) {
    // Region-mean per-call cost scaled by this node's call count: the
    // registry aggregates work per region, the tree splits it per path.
    const double flops =
        it->second.flops_per_call * static_cast<double>(node.count);
    const double bytes =
        it->second.bytes_per_call * static_cast<double>(node.count);
    const double ns = static_cast<double>(node.total_ns);
    os << "  [" << rate3(flops / ns) << " GFLOP/s, " << rate3(bytes / ns)
       << " GB/s, " << rate3(bytes > 0.0 ? flops / bytes : 0.0)
       << " FLOP/B]";
  }
  os << "\n";
  for (const auto& c : node.children) {
    render_annotated(*c, depth + 1, costs, os);
  }
}

}  // namespace

std::string render_annotated_profile(
    const telemetry::CallProfile& profile) {
  std::map<std::string, MeanCost> costs;
  for (const KernelWorkSnapshot& k : WorkRegistry::instance().snapshot()) {
    if (k.calls == 0) continue;
    costs[k.name] = {k.flops / static_cast<double>(k.calls),
                     k.bytes / static_cast<double>(k.calls)};
  }
  std::ostringstream os;
  for (const auto& c : profile.root().children) {
    render_annotated(*c, 0, costs, os);
  }
  return os.str();
}

}  // namespace resipe::perf
