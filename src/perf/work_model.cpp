#include "resipe/perf/work_model.hpp"

#include <cstdlib>
#include <cstring>

namespace resipe::perf {

namespace detail {

std::atomic<int> g_accounting{-1};

bool resolve_accounting() noexcept {
  int state = 0;
  if (const char* env = std::getenv("RESIPE_PERF")) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
        std::strcmp(env, "ON") == 0 || std::strcmp(env, "true") == 0) {
      state = 1;
    }
  }
  int expected = -1;
  g_accounting.compare_exchange_strong(expected, state,
                                       std::memory_order_relaxed);
  return g_accounting.load(std::memory_order_relaxed) != 0;
}

}  // namespace detail

void set_accounting_enabled(bool on) noexcept {
  detail::g_accounting.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --- analytic models (constants documented in the header) --------------

WorkCost fast_mvm_cost(std::size_t rows, std::size_t cols) {
  const double r = static_cast<double>(rows);
  const double c = static_cast<double>(cols);
  return {4.0 * r + 2.0 * r * c + 10.0 * c,
          8.0 * (2.0 * r + 2.0 * r * c + 3.0 * c + c)};
}

WorkCost fast_mvm_batch_cost(std::size_t rows, std::size_t cols,
                             std::size_t n) {
  const double r = static_cast<double>(rows);
  const double c = static_cast<double>(cols);
  const double s = static_cast<double>(n);
  const WorkCost single = fast_mvm_cost(rows, cols);
  return {s * single.flops,
          8.0 * (2.0 * s * r + r * c + s * r * c + 3.0 * c + 3.0 * s * c)};
}

WorkCost tile_execute_cost(std::size_t rows, std::size_t cols) {
  const double r = static_cast<double>(rows);
  const double c = static_cast<double>(cols);
  return {6.0 * r + 4.0 * r * c + 12.0 * c,
          8.0 * (2.0 * r + 2.0 * r * c + 2.0 * c)};
}

WorkCost spike_encode_cost() { return {8.0, 16.0}; }

WorkCost spike_decode_cost() { return {6.0, 16.0}; }

WorkCost event_queue_build_cost(std::size_t rows) {
  const double r = static_cast<double>(rows);
  return {3.0 * r, 8.0 * (r + 2.0 * r)};
}

WorkCost event_mvm_sparse_cost(std::size_t active, std::size_t cols) {
  const double a = static_cast<double>(active);
  const double c = static_cast<double>(cols);
  return {4.0 * a + 2.0 * a * c + 10.0 * c,
          8.0 * (2.0 * a + 2.0 * a * c + 3.0 * c + c)};
}

WorkCost event_idle_cost(std::size_t cols) {
  const double c = static_cast<double>(cols);
  return {10.0 * c, 8.0 * (3.0 * c + c)};
}

WorkCost event_idle_resolve_cost(std::size_t cols) {
  const double c = static_cast<double>(cols);
  return {c, 8.0 * 3.0 * c};
}

WorkCost ir_drop_solve_cost(std::size_t rows, std::size_t cols) {
  const double r = static_cast<double>(rows);
  const double c = static_cast<double>(cols);
  return {9.0 * r * c + 2.0 * c, 8.0 * (r + r * c + 2.0 * c)};
}

WorkCost transient_mac_cost(std::size_t inputs, std::size_t steps) {
  const double n = static_cast<double>(inputs);
  const double s = static_cast<double>(steps);
  // COG node: RK4, 4 derivative evaluations of 3*n flops + 10 update;
  // S1 + S2 ramp integrations: ~2 passes of 18 flops per step.
  const double flops = s * (4.0 * 3.0 * n + 10.0) + 2.0 * s * 18.0;
  // Conductances + held wordline voltages stream once per derivative
  // evaluation.
  const double bytes = 8.0 * (s * 4.0 * 2.0 * n + 2.0 * n);
  return {flops, bytes};
}

// --- registry ----------------------------------------------------------

WorkRegistry& WorkRegistry::instance() {
  static WorkRegistry registry;
  return registry;
}

KernelWork& WorkRegistry::kernel(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    it = kernels_.emplace(std::string(name), std::make_unique<KernelWork>())
             .first;
  }
  return *it->second;
}

std::vector<KernelWorkSnapshot> WorkRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<KernelWorkSnapshot> out;
  out.reserve(kernels_.size());
  for (const auto& [name, work] : kernels_) {
    out.push_back({name, work->calls(), work->timed_ns(), work->flops(),
                   work->bytes()});
  }
  return out;
}

void WorkRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, work] : kernels_) work->reset();
}

}  // namespace resipe::perf
