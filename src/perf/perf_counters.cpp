#include "resipe/perf/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#include "resipe/telemetry/timer.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace resipe::perf {

#if defined(__linux__)

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                     int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
  const char* name;
};

// Order matches the PerfCounts fields read() fills.
constexpr EventSpec kEventSpecs[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, "cache-refs"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache-misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
};

/// Multiplex-scaled value of one counter fd; nan-free: returns false
/// when the read itself fails.
bool read_scaled(int fd, double* value) {
  // PERF_FORMAT_TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING layout.
  std::uint64_t buf[3] = {0, 0, 0};
  if (::read(fd, buf, sizeof buf) != sizeof buf) return false;
  double v = static_cast<double>(buf[0]);
  if (buf[2] > 0 && buf[1] > buf[2]) {
    v *= static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
  }
  *value = v;
  return true;
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  for (int i = 0; i < kEvents; ++i) {
    perf_event_attr attr{};
    attr.size = sizeof attr;
    attr.type = kEventSpecs[i].type;
    attr.config = kEventSpecs[i].config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    // All events share the first one's group so they schedule together
    // when the PMU has room; degraded scheduling is handled by the
    // time_enabled/time_running scaling.
    const int group = fds_[0];
    const long fd = perf_event_open(&attr, 0, -1, group, 0);
    if (fd < 0) {
      if (i == 0) {
        detail_ = std::string("perf_event_open(") + kEventSpecs[i].name +
                  ") failed: " + std::strerror(errno);
        return;  // no leader -> no counters at all
      }
      continue;  // partial PMUs: keep what opened
    }
    fds_[i] = static_cast<int>(fd);
  }
  available_ = fds_[0] >= 0;
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void PerfCounterGroup::start() {
  start_ns_ = telemetry::now_ns();
  stop_ns_ = 0;
  for (int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfCounterGroup::stop() {
  for (int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  stop_ns_ = telemetry::now_ns();
}

PerfCounts PerfCounterGroup::read() const {
  PerfCounts out;
  out.detail = detail_;
  const std::uint64_t end = stop_ns_ != 0 ? stop_ns_ : telemetry::now_ns();
  out.wall_ns =
      start_ns_ != 0 ? static_cast<double>(end - start_ns_) : 0.0;
  if (!available_) return out;
  double* fields[kEvents] = {&out.cycles, &out.instructions,
                             &out.cache_references, &out.cache_misses,
                             &out.branch_misses};
  bool any = false;
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] < 0) continue;
    if (read_scaled(fds_[i], fields[i])) any = true;
  }
  out.available = any;
  if (!any) out.detail = "perf counter reads failed";
  return out;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup() {
  detail_ = "perf_event_open is Linux-only; wall-clock fallback";
}
PerfCounterGroup::~PerfCounterGroup() = default;

void PerfCounterGroup::start() {
  start_ns_ = telemetry::now_ns();
  stop_ns_ = 0;
}

void PerfCounterGroup::stop() { stop_ns_ = telemetry::now_ns(); }

PerfCounts PerfCounterGroup::read() const {
  PerfCounts out;
  out.detail = detail_;
  const std::uint64_t end = stop_ns_ != 0 ? stop_ns_ : telemetry::now_ns();
  out.wall_ns =
      start_ns_ != 0 ? static_cast<double>(end - start_ns_) : 0.0;
  return out;
}

#endif  // __linux__

}  // namespace resipe::perf
