#include "resipe/baselines/level_based.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::baselines {

using namespace resipe::units;

LevelBasedDesign::LevelBasedDesign(LevelBasedParams params,
                                   device::ReramSpec spec, std::size_t rows,
                                   std::size_t cols,
                                   std::uint64_t program_seed)
    : params_(params) {
  RESIPE_REQUIRE(params_.apply_time > 0.0 && params_.convert_time > 0.0,
                 "phase times must be positive");
  RESIPE_REQUIRE(params_.utilization >= 0.0 && params_.utilization <= 1.0,
                 "utilization out of [0, 1]");
  xbar_ = std::make_unique<crossbar::Crossbar>(
      crossbar::make_representative(rows, cols, spec, program_seed));
}

energy::EnergyReport LevelBasedDesign::mvm_report() const {
  const energy::ComponentLibrary lib;
  energy::EnergyReport report;
  const auto n_rows = static_cast<double>(rows());
  const auto n_cols = static_cast<double>(cols());

  // Per-wordline DACs: one conversion each, bias current for the whole
  // apply phase ("inputs fully occupy the entire computation period").
  report.add(lib.dac(params_.dac_bits), n_rows, 1.0, params_.apply_time);

  // Crossbar static current: bitlines at virtual ground, wordlines at
  // the applied level for the entire apply phase.
  const std::vector<double> v_wl(rows(),
                                 params_.v_read * params_.utilization * 2.0);
  report.add_raw("ReRAM crossbar (static read)",
                 xbar_->static_read_energy(v_wl, params_.apply_time),
                 xbar_->area());

  // Column sample-and-holds + the shared time-multiplexed ADC: one
  // conversion per column per MVM.
  report.add(lib.sample_hold(), n_cols, 1.0, params_.convert_time);
  report.add(lib.adc(params_.adc_bits), 1.0, n_cols,
             params_.convert_time);

  // Input/output registers and sequencing.
  report.add(lib.digital_logic(400), 1.0, 2.0, 0.0);
  return report;
}

double LevelBasedDesign::mvm_latency() const {
  return params_.apply_time + params_.convert_time;
}

double LevelBasedDesign::initiation_interval() const {
  // Apply and convert phases are pipelined (double-buffered S/H).
  return std::max(params_.apply_time, params_.convert_time);
}

std::vector<double> LevelBasedDesign::functional_mvm(
    std::span<const double> x) const {
  RESIPE_REQUIRE(x.size() == rows(), "input size mismatch");
  const double dac_levels = std::pow(2.0, params_.dac_bits) - 1.0;
  std::vector<double> v(rows(), 0.0);
  for (std::size_t i = 0; i < rows(); ++i) {
    const double xn = std::clamp(x[i], 0.0, 1.0);
    v[i] = std::round(xn * dac_levels) / dac_levels * params_.v_read;
  }
  std::vector<double> currents = xbar_->ideal_mvm(v);
  // ADC full scale: all cells at G_max driven at v_read.
  const double full_scale = params_.v_read * xbar_->spec().g_max() *
                            static_cast<double>(rows());
  const double adc_levels = std::pow(2.0, params_.adc_bits) - 1.0;
  for (double& y : currents) {
    const double yn = std::clamp(y / full_scale, 0.0, 1.0);
    y = std::round(yn * adc_levels) / adc_levels * full_scale;
  }
  return currents;
}

}  // namespace resipe::baselines
