#include "resipe/baselines/pwm_based.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::baselines {

using namespace resipe::units;

double PwmParams::window() const {
  return std::pow(2.0, bits) * time_step;
}

PwmDesign::PwmDesign(PwmParams params, device::ReramSpec spec,
                     std::size_t rows, std::size_t cols,
                     std::uint64_t program_seed)
    : params_(params) {
  RESIPE_REQUIRE(params_.bits >= 1 && params_.bits <= 12,
                 "PWM bits out of range");
  RESIPE_REQUIRE(params_.time_step > 0.0, "PWM LSB must be positive");
  xbar_ = std::make_unique<crossbar::Crossbar>(
      crossbar::make_representative(rows, cols, spec, program_seed));
}

energy::EnergyReport PwmDesign::mvm_report() const {
  const energy::ComponentLibrary lib;
  energy::EnergyReport report;
  const auto n_rows = static_cast<double>(rows());
  const auto n_cols = static_cast<double>(cols());
  const double window = params_.window();

  // Per-row pulse modulators: ramp + comparator live for the whole
  // window, strong driver holds the line for duty * window.
  report.add(lib.pulse_modulator(), n_rows, 1.0, window);

  // Crossbar: each wordline high for duty * window at full amplitude.
  const std::vector<double> v_wl(rows(), params_.v_pulse);
  report.add_raw(
      "ReRAM crossbar (PWM drive)",
      xbar_->static_read_energy(v_wl, params_.utilization * window),
      xbar_->area());

  // Per-column integrators track the bitline for the full window, then
  // the shared ADC digitizes each column.
  report.add(lib.integrator(), n_cols, 1.0, window);
  report.add(lib.sample_hold(), n_cols, 1.0, params_.readout_time);
  report.add(lib.adc(params_.adc_bits), 1.0, n_cols, params_.readout_time);
  report.add(lib.digital_logic(400), 1.0, 2.0, 0.0);
  return report;
}

double PwmDesign::mvm_latency() const {
  return params_.window() + params_.readout_time;
}

std::vector<double> PwmDesign::functional_mvm(
    std::span<const double> x) const {
  RESIPE_REQUIRE(x.size() == rows(), "input size mismatch");
  const double levels = std::pow(2.0, params_.bits) - 1.0;
  std::vector<double> on_time(rows(), 0.0);
  for (std::size_t i = 0; i < rows(); ++i) {
    const double duty =
        std::round(std::clamp(x[i], 0.0, 1.0) * levels) / levels;
    on_time[i] = duty * params_.window();
  }
  std::vector<double> charge(cols(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    const double q_unit = params_.v_pulse * on_time[r];
    if (q_unit == 0.0) continue;
    for (std::size_t c = 0; c < cols(); ++c)
      charge[c] += q_unit * xbar_->effective_g(r, c);
  }
  const double q_full = params_.v_pulse * params_.window() *
                        xbar_->spec().g_max() * static_cast<double>(rows());
  const double adc_levels = std::pow(2.0, params_.adc_bits) - 1.0;
  for (double& q : charge) {
    const double qn = std::clamp(q / q_full, 0.0, 1.0);
    q = std::round(qn * adc_levels) / adc_levels * q_full;
  }
  return charge;
}

}  // namespace resipe::baselines
