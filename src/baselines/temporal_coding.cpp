#include "resipe/baselines/temporal_coding.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::baselines {

using namespace resipe::units;

TemporalCodingDesign::TemporalCodingDesign(TemporalCodingParams params,
                                           device::ReramSpec spec,
                                           std::size_t rows,
                                           std::size_t cols,
                                           std::uint64_t program_seed)
    : params_(params) {
  RESIPE_REQUIRE(params_.window > 0.0 && params_.membrane_tau > 0.0,
                 "temporal-coding timing must be positive");
  RESIPE_REQUIRE(params_.spikes_per_input >= 1.0,
                 "at least one spike per input");
  xbar_ = std::make_unique<crossbar::Crossbar>(
      crossbar::make_representative(rows, cols, spec, program_seed));
}

energy::EnergyReport TemporalCodingDesign::mvm_report() const {
  const energy::ComponentLibrary lib;
  energy::EnergyReport report;
  const auto n_rows = static_cast<double>(rows());
  const auto n_cols = static_cast<double>(cols());

  // Pre-synaptic spike shapers: one shaped spike costs more than a
  // digital edge (amplitude + tail control), but there are few of them.
  auto shaper = lib.pulse_shaper();
  shaper.name = "spike shaping driver";
  shaper.energy_per_op = 180.0 * fJ;
  report.add(shaper, n_rows, params_.spikes_per_input, 0.0);

  // Crossbar: each line is driven for spikes * on-time at v_spike.
  const std::vector<double> v_wl(rows(), params_.v_spike);
  report.add_raw(
      "ReRAM crossbar (shaped spikes)",
      xbar_->static_read_energy(
          v_wl, params_.spikes_per_input * params_.spike_on_time),
      xbar_->area());

  // Post-synaptic neuron circuits: membrane + leak + threshold +
  // shaping feedback, biased for the whole window — the "Neuron
  // Circuit" interface of Table I.
  auto neuron = lib.integrate_fire_neuron(6, params_.neuron_bias);
  neuron.name = "neuron circuit (temporal)";
  neuron.area = 650.0e-12;  // the analog dynamics cost silicon
  report.add(neuron, n_cols, params_.spikes_per_input, params_.window);

  report.add(lib.digital_logic(250), 1.0, 2.0, 0.0);
  return report;
}

double TemporalCodingDesign::mvm_latency() const { return params_.window; }

std::vector<double> TemporalCodingDesign::functional_mvm(
    std::span<const double> x) const {
  RESIPE_REQUIRE(x.size() == rows(), "input size mismatch");
  // First-spike-latency code: larger values spike earlier, leaving
  // more integration time before readout at t = window/2 + tail.
  const double encode_span = params_.window / 2.0;
  std::vector<double> t_spike(rows(), 0.0);
  for (std::size_t i = 0; i < rows(); ++i) {
    const double xn = std::clamp(x[i], 0.0, 1.0);
    t_spike[i] = (1.0 - xn) * encode_span;
  }
  const double t_read = params_.window;
  std::vector<double> q(cols(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    // A pre-synaptic spike at t_spike opens a sustained synaptic
    // current into the leaky membrane; by readout the contribution has
    // settled toward its leak-limited value:
    //   q = G * V * tau * (1 - exp(-(t_read - t_spike)/tau)).
    // Earlier spikes (larger values) integrate longer -> more charge.
    const double integrate =
        params_.membrane_tau *
        (1.0 - std::exp(-(t_read - t_spike[r]) / params_.membrane_tau));
    const double unit = params_.v_spike * integrate;
    for (std::size_t c = 0; c < cols(); ++c) {
      q[c] += unit * xbar_->effective_g(r, c);
    }
  }
  return q;
}

}  // namespace resipe::baselines
