#include "resipe/baselines/rate_coding.hpp"

#include <algorithm>
#include <cmath>

#include "resipe/common/error.hpp"

namespace resipe::baselines {

using namespace resipe::units;

double RateCodingParams::window() const {
  return (std::pow(2.0, bits) - 1.0) * spike_period + spike_period;
}

RateCodingDesign::RateCodingDesign(RateCodingParams params,
                                   device::ReramSpec spec, std::size_t rows,
                                   std::size_t cols,
                                   std::uint64_t program_seed)
    : params_(params) {
  RESIPE_REQUIRE(params_.bits >= 1 && params_.bits <= 12,
                 "rate-coding bits out of range");
  RESIPE_REQUIRE(params_.spike_width <= params_.spike_period,
                 "spike width exceeds slot pitch");
  xbar_ = std::make_unique<crossbar::Crossbar>(
      crossbar::make_representative(rows, cols, spec, program_seed));
}

int RateCodingDesign::encode_spikes(double x) const {
  const double levels = std::pow(2.0, params_.bits) - 1.0;
  return static_cast<int>(std::round(std::clamp(x, 0.0, 1.0) * levels));
}

energy::EnergyReport RateCodingDesign::mvm_report() const {
  const energy::ComponentLibrary lib;
  energy::EnergyReport report;
  const auto n_rows = static_cast<double>(rows());
  const auto n_cols = static_cast<double>(cols());
  const double window = params_.window();
  const double spikes_per_input =
      static_cast<double>(encode_spikes(params_.utilization));

  // Per-row spike modulators: one event per emitted spike, clocked for
  // the whole window.
  report.add(lib.spike_modulator(params_.bits), n_rows, spikes_per_input,
             window);
  report.add(lib.spike_driver(), n_rows, spikes_per_input, 0.0);

  // Crossbar: every wordline is driven for (spikes * width) seconds.
  const std::vector<double> v_wl(rows(), params_.v_spike);
  report.add_raw(
      "ReRAM crossbar (spiking)",
      xbar_->static_read_energy(v_wl,
                                spikes_per_input * params_.spike_width),
      xbar_->area());

  // Per-column I&F neurons: fire/reset events proportional to the
  // output spike count (~input rate at a balanced array), biased for
  // the whole window; output counters tick per fire.
  const double fires_per_neuron = spikes_per_input;
  report.add(lib.integrate_fire_neuron(params_.bits), n_cols,
             fires_per_neuron, window);
  report.add(lib.digital_logic(300), 1.0, 2.0, 0.0);
  return report;
}

double RateCodingDesign::mvm_latency() const { return params_.window(); }

std::vector<double> RateCodingDesign::functional_mvm(
    std::span<const double> x) const {
  RESIPE_REQUIRE(x.size() == rows(), "input size mismatch");
  // Charge injected per spike per cell: G * V * width.
  std::vector<double> counts(rows(), 0.0);
  for (std::size_t i = 0; i < rows(); ++i)
    counts[i] = static_cast<double>(encode_spikes(x[i]));
  std::vector<double> charge(cols(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    const double q_unit =
        params_.v_spike * params_.spike_width * counts[r];
    if (q_unit == 0.0) continue;
    for (std::size_t c = 0; c < cols(); ++c)
      charge[c] += q_unit * xbar_->effective_g(r, c);
  }
  // Output quantization: the neuron fires once per threshold charge;
  // full scale = all rows at max count into an all-G_max column.
  const double q_full = params_.v_spike * params_.spike_width *
                        (std::pow(2.0, params_.bits) - 1.0) *
                        xbar_->spec().g_max() * static_cast<double>(rows());
  const double levels = std::pow(2.0, params_.bits) - 1.0;
  for (double& q : charge) {
    const double qn = std::clamp(q / q_full, 0.0, 1.0);
    q = std::round(qn * levels) / levels * q_full;
  }
  return charge;
}

}  // namespace resipe::baselines
