#include "resipe/device/reram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "resipe/common/error.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace resipe::device {

double drift_conductance(double g0, double elapsed, double t0, double nu) {
  RESIPE_REQUIRE(elapsed >= 0.0, "negative retention time");
  if (nu <= 0.0 || t0 <= 0.0 || elapsed <= t0) return g0;
  return g0 * std::pow(elapsed / t0, -nu);
}

void ReramSpec::validate() const {
  RESIPE_REQUIRE(r_lrs > 0.0, "LRS must be positive");
  RESIPE_REQUIRE(r_hrs > r_lrs, "HRS must exceed LRS");
  RESIPE_REQUIRE(levels >= 2, "need at least 2 conductance levels");
  RESIPE_REQUIRE(write_verify_tolerance >= 0.0, "negative write tolerance");
  RESIPE_REQUIRE(variation_sigma >= 0.0, "negative variation sigma");
  RESIPE_REQUIRE(read_noise_sigma >= 0.0, "negative read noise sigma");
  RESIPE_REQUIRE(transistor_r_on >= 0.0, "negative transistor resistance");
  RESIPE_REQUIRE(cell_area > 0.0, "non-positive cell area");
  RESIPE_REQUIRE(stuck_lrs_rate >= 0.0 && stuck_hrs_rate >= 0.0 &&
                     stuck_lrs_rate + stuck_hrs_rate <= 1.0,
                 "stuck-at-fault rates must be probabilities");
  RESIPE_REQUIRE(drift_nu >= 0.0, "negative drift exponent");
  RESIPE_REQUIRE(drift_t0 > 0.0, "drift reference time must be positive");
}

ReramSpec ReramSpec::characterization() {
  ReramSpec spec;
  spec.r_lrs = 10.0 * units::kOhm;
  spec.r_hrs = 1.0 * units::MOhm;
  return spec;
}

ReramSpec ReramSpec::nn_mapping() {
  ReramSpec spec;
  spec.r_lrs = 50.0 * units::kOhm;
  spec.r_hrs = 1.0 * units::MOhm;
  return spec;
}

void ReramCell::program(const ReramSpec& spec, double target_g, Rng& rng) {
  // Crossbars program cells in tight loops; the disabled-telemetry path
  // must stay at this one predicted branch.
  if (RESIPE_TELEM_ACTIVE()) {
    RESIPE_TELEM_SCOPE("device.reram.program_cell");
    program_impl<true>(spec, target_g, rng);
    return;
  }
  program_impl<false>(spec, target_g, rng);
}

void ReramCell::program_untracked(const ReramSpec& spec, double target_g,
                                  Rng& rng) {
  program_impl<false>(spec, target_g, rng);
}

template <bool kInstrumented>
void ReramCell::program_impl(const ReramSpec& spec, double target_g,
                             Rng& rng) {
  spec.validate();
  // NaN slips through std::clamp unchanged and would poison every MVM
  // that touches this cell; infinities clamp to a rail silently, which
  // is just as much a caller bug.
  RESIPE_REQUIRE(std::isfinite(target_g), "non-finite conductance target");
  const ConductanceQuantizer quant(spec);
  target_g_ = std::clamp(target_g, spec.g_min(), spec.g_max());
  // An injected/worn-out hard fault is permanent: write pulses cannot
  // move the cell, so programming keeps the pinned rail value.
  if (hard_fault_) return;
  if constexpr (kInstrumented) {
    RESIPE_TELEM_COUNT("device.reram.program_ops", 1);
  }
  // Stuck-at faults win over everything: the write-verify loop cannot
  // move a stuck cell.
  stuck_ = false;
  if (spec.stuck_lrs_rate > 0.0 && rng.bernoulli(spec.stuck_lrs_rate)) {
    programmed_g_ = spec.g_max();
    stuck_ = true;
    if constexpr (kInstrumented) {
      RESIPE_TELEM_COUNT("device.reram.stuck_lrs_faults", 1);
    }
    return;
  }
  if (spec.stuck_hrs_rate > 0.0 && rng.bernoulli(spec.stuck_hrs_rate)) {
    programmed_g_ = spec.g_min();
    stuck_ = true;
    if constexpr (kInstrumented) {
      RESIPE_TELEM_COUNT("device.reram.stuck_hrs_faults", 1);
    }
    return;
  }
  // Snap to the nearest programmable level.
  const double w = quant.g_to_weight(target_g_);
  double g = quant.weight_to_g_quantized(w);
  if constexpr (kInstrumented) {
    if (g != target_g_) {
      RESIPE_TELEM_COUNT("device.reram.quantized_writes", 1);
    }
  }
  // Write-verify residue: uniform within the verify window.  The model
  // folds the whole retry loop into one residue draw; count it as one
  // verify attempt so fault-injection work can track the budget.
  if (spec.write_verify_tolerance > 0.0) {
    if constexpr (kInstrumented) {
      RESIPE_TELEM_COUNT("device.reram.write_verify_attempts", 1);
    }
    g *= 1.0 + rng.uniform(-spec.write_verify_tolerance,
                           spec.write_verify_tolerance);
  }
  // Static process variation: multiplicative normal per [21, 22].
  if (spec.variation_sigma > 0.0) {
    g *= 1.0 + rng.normal(0.0, spec.variation_sigma);
  }
  // A cell cannot be programmed outside its physical window by much;
  // keep it non-negative and bounded by 2x G_max as a sanity envelope
  // (strongly-varied devices can overshoot the nominal window [21]).
  const double clamped = std::clamp(g, 0.0, 2.0 * spec.g_max());
  if constexpr (kInstrumented) {
    if (clamped != g) {
      RESIPE_TELEM_COUNT("device.reram.clamped_writes", 1);
    }
  }
  programmed_g_ = clamped;
}

ProgramResult ReramCell::program_verified(const ReramSpec& spec,
                                          double target_g, Rng& rng,
                                          const ProgramBudget& budget) {
  spec.validate();
  RESIPE_REQUIRE(std::isfinite(target_g), "non-finite conductance target");
  RESIPE_REQUIRE(budget.max_attempts >= 1, "need at least one write attempt");
  ProgramResult result;
  const ConductanceQuantizer quant(spec);
  target_g_ = std::clamp(target_g, spec.g_min(), spec.g_max());
  if (hard_fault_) {
    result.status = ProgramStatus::kHardFault;
    return result;
  }
  stuck_ = false;
  // The verify loop chases the nearest programmable level.
  const double goal = quant.weight_to_g_quantized(quant.g_to_weight(target_g_));
  const double tol = spec.write_verify_tolerance;
  double best_g = 0.0;
  double best_err = std::numeric_limits<double>::infinity();
  for (int attempt = 1; attempt <= budget.max_attempts; ++attempt) {
    result.attempts = attempt;
    // Endurance wear: every pulse consumes one cycle; the failure
    // probability grows as (wear / endurance)^shape and a failed write
    // leaves a permanently open (stuck-at-HRS) filament.
    if (budget.endurance_cycles > 0.0) {
      const double wear =
          (budget.wear_cycles + static_cast<double>(attempt)) /
          budget.endurance_cycles;
      const double p_fail =
          std::clamp(std::pow(std::max(wear, 0.0), budget.failure_shape),
                     0.0, 1.0);
      if (p_fail > 0.0 && rng.bernoulli(p_fail)) {
        force_stuck_hrs(spec);
        target_g_ = std::clamp(target_g, spec.g_min(), spec.g_max());
        result.status = ProgramStatus::kWriteFailed;
        result.relative_error = std::abs(programmed_g_ - goal) / goal;
        RESIPE_TELEM_COUNT("reliability.write_wearout_faults", 1);
        return result;
      }
    }
    // One write pulse: lands with a normal residue whose sigma is the
    // verify tolerance (the folded model's uniform window is the
    // accepted-sample distribution of this loop).
    const double g =
        tol > 0.0 ? goal * (1.0 + rng.normal(0.0, tol)) : goal;
    const double err = std::abs(g - goal) / goal;
    if (err < best_err) {
      best_err = err;
      best_g = g;
    }
    if (err <= tol || tol <= 0.0) break;
  }
  RESIPE_TELEM_COUNT("reliability.write_verify_attempts",
                     result.attempts);
  result.status = best_err <= tol || tol <= 0.0 ? ProgramStatus::kOk
                                                : ProgramStatus::kGaveUp;
  if (result.status == ProgramStatus::kGaveUp) {
    RESIPE_TELEM_COUNT("reliability.write_giveups", 1);
  }
  result.relative_error = tol <= 0.0 ? 0.0 : best_err;
  double g = best_g;
  // Static process variation applies to the accepted level as in the
  // folded model, with the same physical-envelope clamp.
  if (spec.variation_sigma > 0.0) {
    g *= 1.0 + rng.normal(0.0, spec.variation_sigma);
  }
  programmed_g_ = std::clamp(g, 0.0, 2.0 * spec.g_max());
  return result;
}

void ReramCell::force_stuck_lrs(const ReramSpec& spec) {
  programmed_g_ = spec.g_max();
  stuck_ = true;
  hard_fault_ = true;
}

void ReramCell::force_stuck_hrs(const ReramSpec& spec) {
  programmed_g_ = spec.g_min();
  stuck_ = true;
  hard_fault_ = true;
}

double ReramCell::read_g(const ReramSpec& spec, Rng& rng) const {
  double g = programmed_g_;
  if (spec.read_noise_sigma > 0.0) {
    g *= 1.0 + rng.normal(0.0, spec.read_noise_sigma);
  }
  return std::max(g, 0.0);
}

double ReramCell::drifted_g(const ReramSpec& spec, double elapsed) const {
  RESIPE_REQUIRE(elapsed >= 0.0, "negative retention time");
  if (stuck_) return programmed_g_;  // a pinned filament does not relax
  return drift_conductance(programmed_g_, elapsed, spec.drift_t0,
                           spec.drift_nu);
}

double ReramCell::effective_g(const ReramSpec& spec) const {
  if (programmed_g_ <= 0.0) return 0.0;
  const double r_cell = 1.0 / programmed_g_;
  return 1.0 / (r_cell + spec.transistor_r_on);
}

ConductanceQuantizer::ConductanceQuantizer(const ReramSpec& spec)
    : g_min_(spec.g_min()),
      g_max_(spec.g_max()),
      step_((spec.g_max() - spec.g_min()) / (spec.levels - 1)),
      levels_(spec.levels) {}

double ConductanceQuantizer::weight_to_g(double w) const {
  w = std::clamp(w, 0.0, 1.0);
  return g_min_ + w * (g_max_ - g_min_);
}

double ConductanceQuantizer::weight_to_g_quantized(double w) const {
  const double g = weight_to_g(w);
  const double level = std::round((g - g_min_) / step_);
  return g_min_ + level * step_;
}

double ConductanceQuantizer::g_to_weight(double g) const {
  const double w = (g - g_min_) / (g_max_ - g_min_);
  return std::clamp(w, 0.0, 1.0);
}

}  // namespace resipe::device
