// resipe_cli — command-line front end to the simulator.
//
// Subcommands:
//   characterize [--rows N] [--samples N] [--csv FILE]
//       Fig. 5-style input/output characterization.
//   compare
//       Table II design comparison.
//   chip (--net mlp1|mlp2|cnn1|cnn2|cnn3|cnn4)
//       Chip-level mapping report for one benchmark network.
//   mvm --rows N --cols N [--sigma S] [--seed K]
//       One random single-spiking MVM: prints inputs, spike times and
//       decoded outputs.
//   yield [--bound R]
//       Monte-Carlo chip yield across the Fig. 7 sigma sweep.
//   reliability [--net NAME] [--rates R1,R2,...] [--spares N]
//               [--cluster F] [--seeds N]
//       Stuck-at defect-rate sweep: accuracy with the mitigation
//       pipeline OFF vs ON on identical fault realizations.
//   inspect [--net mlp1|mlp2|cnn1] [--images N] [--train N]
//           [--epochs N] [--sigma S] [--seed K] [--out FILE]
//       Trains a small benchmark on synthetic digits, lowers it with
//       introspection enabled and prints the per-layer numerical-health
//       dashboard; --out writes the machine-readable JSON report.
//   profile [--net mlp1|mlp2|cnn1] [--images N] [--train N] [--epochs N]
//           [--reps N] [--seed K] [--calib-ms MS] [--out FILE]
//           [--folded FILE]
//       Profiles repeated inference with kernel work accounting and
//       prints the roofline report (GFLOP/s, GB/s, intensity,
//       compute- vs memory-bound) plus the work-annotated call tree;
//       --out writes the JSON report, --folded writes flamegraph-
//       compatible folded stacks.  With --trace, cumulative-work
//       counter tracks are added to the Chrome trace.
//   quickstart
//       End-to-end mini-workload touching every subsystem; pairs well
//       with --trace / --metrics.
//
// Global options (any position):
//   --trace FILE     record a Chrome trace (chrome://tracing, Perfetto)
//   --metrics FILE   dump the metric registry (.csv extension -> CSV,
//                    anything else -> JSON)
//   --threads N      worker threads for parallel sweeps (beats the
//                    RESIPE_THREADS environment variable; 1 = serial;
//                    default = RESIPE_THREADS, else hardware threads).
//                    Results are bit-identical for every value.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "resipe/common/csv.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/common/table.hpp"
#include "resipe/crossbar/mapping.hpp"
#include "resipe/eval/characterization.hpp"
#include "resipe/eval/comparison.hpp"
#include "resipe/eval/fault_tolerance.hpp"
#include "resipe/eval/yield.hpp"
#include "resipe/introspect/inspect.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/perf/perf_counters.hpp"
#include "resipe/perf/roofline.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/resipe/chip.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace {

using namespace resipe;

const char* arg_value(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int cmd_characterize(int argc, char** argv) {
  eval::CharacterizationConfig cfg;
  cfg.rows = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--rows", "32")));
  cfg.samples = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--samples", "100")));
  const auto result = eval::characterize(cfg);
  std::printf("characterized %zu samples on a %zu-row column\n",
              result.random_samples.size(), cfg.rows);
  std::printf("curve1(80 ps*S) = %s, curve2 = %s, curve3 = %s\n",
              format_si(result.curve1(80e-12), "s").c_str(),
              format_si(result.curve2(80e-12), "s").c_str(),
              format_si(result.curve3(80e-12), "s").c_str());
  const char* csv_path = arg_value(argc, argv, "--csv", "");
  if (csv_path[0] != '\0') {
    CsvWriter csv;
    std::vector<double> x, y;
    for (const auto& p : result.random_samples) {
      x.push_back(p.strength);
      y.push_back(p.t_out);
    }
    csv.add_column("strength_sS", x);
    csv.add_column("t_out_s", y);
    csv.write_file(csv_path);
    std::printf("wrote %s\n", csv_path);
  }
  return 0;
}

int cmd_compare() {
  std::cout << eval::compare_designs().render();
  return 0;
}

int cmd_chip(int argc, char** argv) {
  const std::string tag = arg_value(argc, argv, "--net", "mlp2");
  nn::BenchmarkNet net;
  if (tag == "mlp1") net = nn::BenchmarkNet::kMlp1;
  else if (tag == "mlp2") net = nn::BenchmarkNet::kMlp2;
  else if (tag == "cnn1") net = nn::BenchmarkNet::kCnn1;
  else if (tag == "cnn2") net = nn::BenchmarkNet::kCnn2;
  else if (tag == "cnn3") net = nn::BenchmarkNet::kCnn3;
  else if (tag == "cnn4") net = nn::BenchmarkNet::kCnn4;
  else {
    std::fprintf(stderr, "unknown network '%s'\n", tag.c_str());
    return 2;
  }
  Rng rng(1);
  nn::Sequential model = nn::build_benchmark(net, rng);
  const std::vector<std::size_t> shape =
      nn::uses_object_dataset(net) ? std::vector<std::size_t>{3, 32, 32}
                                   : std::vector<std::size_t>{1, 28, 28};
  std::printf("== %s ==\n", nn::benchmark_name(net).c_str());
  std::cout << resipe_core::map_network(model, shape).render();
  return 0;
}

int cmd_mvm(int argc, char** argv) {
  const auto rows = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--rows", "8")));
  const auto cols = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--cols", "4")));
  const double sigma = std::atof(arg_value(argc, argv, "--sigma", "0"));
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "7")));
  if (rows == 0 || cols == 0) {
    std::fprintf(stderr, "--rows/--cols must be positive\n");
    return 2;
  }

  circuits::CircuitParams params;
  device::ReramSpec spec = device::ReramSpec::nn_mapping();
  spec.variation_sigma = sigma;
  resipe_core::ResipeTile tile(params, rows, cols, spec);
  Rng rng(seed);
  std::vector<double> g(rows * cols);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  tile.program(g, rng);

  const resipe_core::SpikeCodec codec(params);
  std::vector<circuits::Spike> in(rows);
  TextTable t_in({"wordline", "value", "spike arrival"});
  for (std::size_t i = 0; i < rows; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    in[i] = codec.encode(x);
    t_in.add_row({std::to_string(i), format_fixed(x, 3),
                  format_si(in[i].arrival_time, "s")});
  }
  std::puts(t_in.str().c_str());

  const auto out = tile.execute(in);
  TextTable t_out({"bitline", "spike arrival", "decoded value"});
  for (std::size_t c = 0; c < cols; ++c) {
    t_out.add_row({std::to_string(c),
                   out[c].valid()
                       ? format_si(out[c].arrival_time, "s")
                       : "(silent)",
                   format_fixed(codec.decode(out[c]), 4)});
  }
  std::puts(t_out.str().c_str());
  return 0;
}

int cmd_yield(int argc, char** argv) {
  eval::YieldConfig cfg;
  cfg.rmse_bound = std::atof(arg_value(argc, argv, "--bound", "0.05"));
  const auto points = eval::mvm_yield(resipe_core::EngineConfig{}, cfg);
  std::cout << eval::render_yield(points, cfg.rmse_bound);
  return 0;
}

int cmd_reliability(int argc, char** argv) {
  eval::FaultToleranceConfig cfg;
  const std::string tag = arg_value(argc, argv, "--net", "mlp1");
  if (tag == "mlp1") cfg.net = nn::BenchmarkNet::kMlp1;
  else if (tag == "mlp2") cfg.net = nn::BenchmarkNet::kMlp2;
  else if (tag == "cnn1") cfg.net = nn::BenchmarkNet::kCnn1;
  else if (tag == "cnn2") cfg.net = nn::BenchmarkNet::kCnn2;
  else if (tag == "cnn3") cfg.net = nn::BenchmarkNet::kCnn3;
  else if (tag == "cnn4") cfg.net = nn::BenchmarkNet::kCnn4;
  else {
    std::fprintf(stderr, "unknown network '%s'\n", tag.c_str());
    return 2;
  }
  const std::string rates = arg_value(argc, argv, "--rates", "");
  if (!rates.empty()) {
    cfg.defect_rates.clear();
    std::size_t pos = 0;
    while (pos < rates.size()) {
      std::size_t next = rates.find(',', pos);
      if (next == std::string::npos) next = rates.size();
      const double r = std::atof(rates.substr(pos, next - pos).c_str());
      if (r < 0.0 || r > 1.0) {
        std::fprintf(stderr, "defect rate out of [0, 1]: %f\n", r);
        return 2;
      }
      cfg.defect_rates.push_back(r);
      pos = next + 1;
    }
    if (cfg.defect_rates.empty()) {
      std::fprintf(stderr, "--rates parsed to an empty list\n");
      return 2;
    }
  }
  cfg.spare_cols = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--spares", "4")));
  cfg.cluster_fraction =
      std::atof(arg_value(argc, argv, "--cluster", "0.25"));
  cfg.mc_seeds = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--seeds", "2")));
  if (cfg.mc_seeds == 0) {
    std::fprintf(stderr, "--seeds must be positive\n");
    return 2;
  }
  cfg.verbose = true;
  const auto result = eval::evaluate_fault_tolerance(cfg);
  std::cout << "\n" << eval::render_fault_tolerance(result);
  return 0;
}

// Trains a benchmark network on synthetic data, lowers it onto the
// engine with every probe enabled, and prints / writes the per-layer
// inspection report (spike health, fidelity-drift attribution, energy
// ledger, provenance).
int cmd_inspect(int argc, char** argv) {
  const std::string tag = arg_value(argc, argv, "--net", "mlp1");
  nn::BenchmarkNet net;
  if (tag == "mlp1") net = nn::BenchmarkNet::kMlp1;
  else if (tag == "mlp2") net = nn::BenchmarkNet::kMlp2;
  else if (tag == "cnn1") net = nn::BenchmarkNet::kCnn1;
  else {
    std::fprintf(stderr, "inspect supports --net mlp1|mlp2|cnn1\n");
    return 2;
  }
  const auto train_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--train", "256")));
  const auto test_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--images", "64")));
  const auto epochs = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--epochs", "3")));
  const double sigma = std::atof(arg_value(argc, argv, "--sigma", "0.1"));
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "42")));
  const std::string out = arg_value(argc, argv, "--out", "");
  if (train_n == 0 || test_n == 0) {
    std::fprintf(stderr, "--train/--images must be positive\n");
    return 2;
  }

  Rng data_rng(7);
  Rng train_rng = data_rng.split();
  Rng test_rng = data_rng.split();
  const nn::Dataset train = nn::synthetic_digits(train_n, train_rng);
  const nn::Dataset test = nn::synthetic_digits(test_n, test_rng);

  Rng model_rng(0xC0FFEEull + static_cast<std::uint64_t>(net));
  nn::Sequential model = nn::build_benchmark(net, model_rng);
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.lr = 1e-3;
  const auto tr = nn::fit(model, train, test, tc);
  std::printf("trained %s: train acc %.3f, test acc %.3f\n",
              model.name().c_str(), tr.train_accuracy, tr.test_accuracy);

  resipe_core::EngineConfig ec;
  ec.program_seed = seed;
  ec.device.variation_sigma = sigma;
  ec.introspect.enabled = true;
  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < std::min<std::size_t>(48, train.size()); ++i)
    calib_idx.push_back(i);
  auto [calib, calib_labels] = train.gather(calib_idx);
  (void)calib_labels;
  const resipe_core::ResipeNetwork hw(model, ec, calib);

  const introspect::InspectionReport report =
      introspect::inspect(hw, test.images, test.labels);
  std::fputs(report.render_ascii().c_str(), stdout);
  if (!out.empty()) {
    report.write_json_file(out);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

// Trains a small benchmark on synthetic digits, lowers it onto the
// engine and profiles repeated inference with kernel work accounting,
// hardware perf counters (when the kernel allows) and a one-shot
// machine calibration, then prints the roofline report and the
// work-annotated call tree.  Verifies on the way that enabling the
// accounting leaves the logits bit-identical.
int cmd_profile(int argc, char** argv) {
  const std::string tag = arg_value(argc, argv, "--net", "mlp1");
  nn::BenchmarkNet net;
  if (tag == "mlp1") net = nn::BenchmarkNet::kMlp1;
  else if (tag == "mlp2") net = nn::BenchmarkNet::kMlp2;
  else if (tag == "cnn1") net = nn::BenchmarkNet::kCnn1;
  else {
    std::fprintf(stderr, "profile supports --net mlp1|mlp2|cnn1\n");
    return 2;
  }
  const auto train_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--train", "128")));
  const auto test_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--images", "32")));
  const auto epochs = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--epochs", "2")));
  const auto reps = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--reps", "3")));
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "42")));
  const double calib_ms =
      std::atof(arg_value(argc, argv, "--calib-ms", "60"));
  const std::string out = arg_value(argc, argv, "--out", "");
  const std::string folded = arg_value(argc, argv, "--folded", "");
  if (train_n == 0 || test_n == 0 || reps == 0) {
    std::fprintf(stderr, "--train/--images/--reps must be positive\n");
    return 2;
  }

  // Enable telemetry before the network is lowered: SpikeCodec caches
  // the telemetry flag at construction, and its codec work rides the
  // same cold path as its counters.
  telemetry::set_enabled(true);

  Rng data_rng(7);
  Rng train_rng = data_rng.split();
  Rng test_rng = data_rng.split();
  const nn::Dataset train = nn::synthetic_digits(train_n, train_rng);
  const nn::Dataset test = nn::synthetic_digits(test_n, test_rng);

  Rng model_rng(0xC0FFEEull + static_cast<std::uint64_t>(net));
  nn::Sequential model = nn::build_benchmark(net, model_rng);
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.lr = 1e-3;
  (void)nn::fit(model, train, test, tc);

  resipe_core::EngineConfig ec;
  ec.program_seed = seed;
  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < std::min<std::size_t>(48, train.size()); ++i)
    calib_idx.push_back(i);
  auto [calib, calib_labels] = train.gather(calib_idx);
  (void)calib_labels;
  const resipe_core::ResipeNetwork hw(model, ec, calib);

  // Bit-identity sanity: accounting on must not perturb the logits.
  perf::set_accounting_enabled(false);
  const nn::Tensor logits_off = hw.forward(test.images);
  perf::set_accounting_enabled(true);
  const nn::Tensor logits_on = hw.forward(test.images);
  const std::span<const double> off = logits_off.data();
  const std::span<const double> on = logits_on.data();
  const bool identical =
      off.size() == on.size() &&
      std::memcmp(off.data(), on.data(), off.size() * sizeof(double)) == 0;
  std::printf("accounting on/off logits: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  // Measured region: repeated inference over the test batch with the
  // profile tree, work registry and counters all reset/armed.
  perf::WorkRegistry::instance().reset_values();
  telemetry::CallProfile::this_thread().reset();
  auto& trace = telemetry::TraceSession::instance();
  perf::PerfCounterGroup counters;
  counters.start();
  for (std::size_t i = 0; i < reps; ++i) {
    (void)hw.forward(test.images);
    if (trace.active()) {
      // Counter tracks: cumulative accounted work after each rep.
      double gflops = 0.0, gbytes = 0.0;
      for (const auto& k : perf::WorkRegistry::instance().snapshot()) {
        gflops += k.flops * 1e-9;
        gbytes += k.bytes * 1e-9;
      }
      trace.counter("perf.accounted_gflop", gflops);
      trace.counter("perf.accounted_gbyte", gbytes);
    }
  }
  counters.stop();

  std::printf("calibrating machine ceilings (%.0f ms/bench)...\n",
              calib_ms);
  const perf::MachineProfile machine = perf::calibrate_machine(calib_ms);
  const perf::RooflineReport report =
      perf::build_roofline_report(machine, counters.read());
  std::fputs(report.render_ascii().c_str(), stdout);
  std::puts("\n== work-annotated call tree ==");
  std::fputs(
      perf::render_annotated_profile(telemetry::CallProfile::this_thread())
          .c_str(),
      stdout);
  if (!out.empty()) {
    report.write_json_file(out);
    std::printf("wrote %s\n", out.c_str());
  }
  if (!folded.empty()) {
    perf::write_folded_stacks_file(folded,
                                   telemetry::CallProfile::this_thread());
    std::printf("wrote %s\n", folded.c_str());
  }
  return identical ? 0 : 1;
}

// End-to-end mini-workload: weight mapping (crossbar), cell programming
// (device), a single-spiking MVM (resipe_core) and a small
// characterization sweep (eval).  Mirrors examples/quickstart.cpp so
// `resipe_cli --trace out.json quickstart` yields spans from every
// subsystem.
int cmd_quickstart() {
  std::puts("=== quickstart workload ===\n");
  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();

  const std::vector<double> weights = {0.8, -0.2, 0.6, 0.4,
                                       -0.3, 0.9, -0.7, 0.1};
  const auto mapped = crossbar::map_weights(
      weights, 4, 2, spec, crossbar::SignedMapping::kDifferentialPair);
  resipe_core::ResipeTile tile(params, mapped.rows, mapped.cols, spec);
  Rng rng(2020);
  tile.program(mapped.g_targets, rng);

  const resipe_core::SpikeCodec codec(params);
  const std::vector<double> values = {0.8, 0.6, 0.3, 0.1};
  std::vector<circuits::Spike> inputs;
  for (double v : values) inputs.push_back(codec.encode(v));
  const auto outputs = tile.execute(inputs);
  TextTable t({"bitline", "spike arrival", "decoded"});
  for (std::size_t c = 0; c < outputs.size(); ++c) {
    t.add_row({std::to_string(c),
               outputs[c].valid()
                   ? format_si(outputs[c].arrival_time, "s")
                   : "(silent)",
               format_fixed(codec.decode(outputs[c]), 4)});
  }
  std::puts(t.str().c_str());

  eval::CharacterizationConfig cfg;
  cfg.rows = 8;
  cfg.samples = 16;
  const auto result = eval::characterize(cfg);
  std::printf("characterized %zu samples; curve1(80 ps*S) = %s\n",
              result.random_samples.size(),
              format_si(result.curve1(80e-12), "s").c_str());
  return 0;
}

/// Known subcommands and their (value-taking) flags.  Checked centrally
/// in main before dispatch: a typo'd subcommand or stray flag errors
/// with usage text and a nonzero exit instead of being silently
/// ignored and running with defaults.
struct CommandSpec {
  const char* name;
  std::vector<const char*> flags;
};

const std::vector<CommandSpec>& command_table() {
  static const std::vector<CommandSpec> table = {
      {"characterize", {"--rows", "--samples", "--csv"}},
      {"compare", {}},
      {"chip", {"--net"}},
      {"mvm", {"--rows", "--cols", "--sigma", "--seed"}},
      {"yield", {"--bound"}},
      {"reliability",
       {"--net", "--rates", "--spares", "--cluster", "--seeds"}},
      {"inspect",
       {"--net", "--images", "--train", "--epochs", "--sigma", "--seed",
        "--out"}},
      {"profile",
       {"--net", "--images", "--train", "--epochs", "--reps", "--seed",
        "--calib-ms", "--out", "--folded"}},
      {"quickstart", {}},
  };
  return table;
}

// Only ever printed on a usage *error*, so it goes to stderr: stdout
// stays clean for the command's actual report.
void usage() {
  std::fputs(
      "usage: resipe_cli [--trace FILE] [--metrics FILE] <command> "
      "[options]\n"
      "  characterize [--rows N] [--samples N] [--csv FILE]\n"
      "  compare\n"
      "  chip --net mlp1|mlp2|cnn1|cnn2|cnn3|cnn4\n"
      "  mvm --rows N --cols N [--sigma S] [--seed K]\n"
      "  yield [--bound R]\n"
      "  reliability [--net NAME] [--rates R1,R2,...] [--spares N]\n"
      "              [--cluster F] [--seeds N]\n"
      "  inspect [--net mlp1|mlp2|cnn1] [--images N] [--train N]\n"
      "          [--epochs N] [--sigma S] [--seed K] [--out FILE]\n"
      "  profile [--net mlp1|mlp2|cnn1] [--images N] [--train N]\n"
      "          [--epochs N] [--reps N] [--seed K] [--calib-ms MS]\n"
      "          [--out FILE] [--folded FILE]\n"
      "  quickstart\n"
      "global options:\n"
      "  --trace FILE    write a Chrome trace-event JSON (Perfetto)\n"
      "  --metrics FILE  dump metrics (.csv -> CSV, else JSON)\n"
      "  --threads N     worker threads for parallel sweeps (overrides\n"
      "                  RESIPE_THREADS; 1 = serial; results are\n"
      "                  bit-identical for every N)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  // Pull the global --trace / --metrics options out of argv; the
  // remaining arguments keep their order for the subcommand parsers.
  std::string trace_path;
  std::string metrics_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  const auto is_global = [](const char* a) {
    return std::strcmp(a, "--trace") == 0 ||
           std::strcmp(a, "--metrics") == 0 ||
           std::strcmp(a, "--threads") == 0;
  };
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && is_global(argv[i]) && i + 1 >= argc) {
      std::fprintf(stderr, "error: missing value for '%s'\n", argv[i]);
      usage();
      return 2;
    }
    if (i + 1 < argc && std::strcmp(argv[i], "--trace") == 0) {
      trace_path = argv[++i];
    } else if (i + 1 < argc && std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = argv[++i];
    } else if (i + 1 < argc && std::strcmp(argv[i], "--threads") == 0) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
      // Process-wide default: every sweep config leaves its `threads`
      // knob at 0 ("use the default"), so this one call covers all
      // subcommands and outranks the RESIPE_THREADS environment
      // variable.
      resipe::set_default_threads(static_cast<std::size_t>(n));
    } else {
      args.push_back(argv[i]);
    }
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) {
    usage();
    return 2;
  }

  if (!trace_path.empty()) telemetry::TraceSession::instance().start();
  if (!metrics_path.empty()) telemetry::set_enabled(true);

  const std::string cmd = args[1];
  const CommandSpec* spec = nullptr;
  for (const CommandSpec& c : command_table()) {
    if (cmd == c.name) {
      spec = &c;
      break;
    }
  }
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
    usage();
    return 2;
  }
  // Strict flag check: every remaining token must be a known
  // value-taking flag of this command, followed by its value.
  for (int i = 2; i < nargs; ++i) {
    const char* tok = args[static_cast<std::size_t>(i)];
    bool recognized = false;
    for (const char* flag : spec->flags) {
      if (std::strcmp(tok, flag) == 0) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      std::fprintf(stderr, "error: unknown option '%s' for command '%s'\n",
                   tok, spec->name);
      usage();
      return 2;
    }
    if (i + 1 >= nargs) {
      std::fprintf(stderr, "error: missing value for '%s'\n", tok);
      usage();
      return 2;
    }
    ++i;  // skip the flag's value
  }

  int rc = 2;
  try {
    if (cmd == "characterize") rc = cmd_characterize(nargs, args.data());
    else if (cmd == "compare") rc = cmd_compare();
    else if (cmd == "chip") rc = cmd_chip(nargs, args.data());
    else if (cmd == "mvm") rc = cmd_mvm(nargs, args.data());
    else if (cmd == "yield") rc = cmd_yield(nargs, args.data());
    else if (cmd == "reliability") rc = cmd_reliability(nargs, args.data());
    else if (cmd == "inspect") rc = cmd_inspect(nargs, args.data());
    else if (cmd == "profile") rc = cmd_profile(nargs, args.data());
    else if (cmd == "quickstart") rc = cmd_quickstart();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  try {
    if (!trace_path.empty()) {
      auto& session = telemetry::TraceSession::instance();
      session.stop();
      session.write_chrome_trace_file(trace_path);
      std::printf("wrote trace with %zu events to %s\n",
                  session.snapshot().size(), trace_path.c_str());
      if (session.dropped() > 0) {
        std::printf("  (%zu events dropped at capacity)\n",
                    session.dropped());
      }
    }
    if (!metrics_path.empty()) {
      if (metrics_path.size() >= 4 &&
          metrics_path.rfind(".csv") == metrics_path.size() - 4) {
        telemetry::write_metrics_csv_file(metrics_path);
      } else {
        telemetry::write_metrics_json_file(metrics_path);
      }
      std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry export error: %s\n", e.what());
    return 1;
  }
  return rc;
}
