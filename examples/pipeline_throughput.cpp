// Layer pipelining and replication study.
//
// Shows how the single-spiking format turns a deep network into a
// systolic pipeline (Fig. 1) and how tile replication under an area
// budget buys throughput (the Fig. 6 trade-off) for the six benchmark
// networks.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "resipe/common/table.hpp"
#include "resipe/common/units.hpp"
#include "resipe/eval/throughput.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/design.hpp"
#include "resipe/resipe/pipeline.hpp"

int main() {
  using namespace resipe;
  using namespace resipe::units;

  std::puts("=== Two-slice pipelining across the benchmark networks "
            "===\n");

  const double slice = 100.0 * ns;
  Rng rng(1);
  TextTable t({"Network", "Matrix layers", "Input latency",
               "Result rate (full pipe)", "Speedup @ 64 inputs"});
  for (nn::BenchmarkNet net : nn::all_benchmarks()) {
    nn::Sequential model = nn::build_benchmark(net, rng);
    const resipe_core::TwoSlicePipeline pipe(model.matrix_layer_count(),
                                             slice);
    t.add_row({nn::benchmark_name(net),
               std::to_string(model.matrix_layer_count()),
               format_si(pipe.input_latency(), "s"),
               format_si(1.0 / pipe.initiation_interval(), "Hz"),
               format_fixed(pipe.pipeline_speedup(64), 2) + "x"});
  }
  std::puts(t.str().c_str());

  std::puts("pipeline occupancy for a 4-layer network, 6 streamed "
            "inputs:\n");
  const resipe_core::TwoSlicePipeline demo(4, slice);
  std::puts(demo.diagram(6).c_str());

  std::puts("=== Replication under an area budget (Fig. 6 view) ===\n");
  resipe_core::ResipeDesign design;
  const auto point = design.evaluate();
  TextTable r({"Area budget", "ReSiPE tiles", "Aggregate throughput"});
  for (double budget_mm2 : {0.05, 0.1, 0.2, 0.5}) {
    const double budget = budget_mm2 * 1e-6;
    const double tiles = std::floor(budget / point.area);
    r.add_row({format_fixed(budget_mm2, 2) + " mm2",
               format_fixed(tiles, 0),
               format_si(tiles * point.throughput, "OPS")});
  }
  std::puts(r.str().c_str());
  return 0;
}
