// MNIST-style workload on ReSiPE.
//
// Trains the paper's MLP-2 benchmark on the synthetic digit task, then
// lowers it onto the single-spiking circuit model and compares
// software vs hardware accuracy — with and without ReRAM process
// variation.  This is the paper's motivating use case: inference-only
// PIM for perceptron workloads (Sec. IV-C).
#include <cstdio>

#include "resipe/common/table.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"

int main() {
  using namespace resipe;

  std::puts("=== MLP-2 on synthetic digits, lowered onto ReSiPE ===\n");

  Rng data_rng(42);
  const nn::Dataset train = nn::synthetic_digits(2500, data_rng);
  const nn::Dataset test = nn::synthetic_digits(300, data_rng);

  Rng model_rng(1);
  nn::Sequential model =
      nn::build_benchmark(nn::BenchmarkNet::kMlp2, model_rng);
  std::puts(model.summary().c_str());

  nn::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.lr = 1e-3;
  cfg.verbose = true;
  std::puts("training...");
  const auto result = nn::fit(model, train, test, cfg);
  std::printf("software accuracy: train %s, test %s\n\n",
              format_percent(result.train_accuracy).c_str(),
              format_percent(result.test_accuracy).c_str());

  // Calibration batch for the hardware mapping.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 32; ++i) idx.push_back(i);
  auto [calib, labels] = train.gather(idx);
  (void)labels;

  TextTable table({"Engine", "sigma", "Accuracy", "Tiles"});
  for (double sigma : {0.0, 0.05, 0.10, 0.20}) {
    resipe_core::EngineConfig ec;
    ec.device.variation_sigma = sigma;
    const resipe_core::ResipeNetwork hw(model, ec, calib);
    const double acc = nn::evaluate_with(
        test, [&hw](const nn::Tensor& b) { return hw.forward(b); });
    table.add_row({"ReSiPE (exact circuit)", format_percent(sigma),
                   format_percent(acc), std::to_string(hw.tile_count())});
  }
  {
    const resipe_core::ResipeNetwork ideal(
        model, resipe_core::EngineConfig::ideal(), calib);
    const double acc = nn::evaluate_with(
        test, [&ideal](const nn::Tensor& b) { return ideal.forward(b); });
    table.add_row({"ReSiPE (ideal reference)", "-", format_percent(acc),
                   std::to_string(ideal.tile_count())});
  }
  std::puts(table.str().c_str());
  std::puts("The sigma = 0 row isolates the circuit non-linearity +\n"
            "quantization penalty; rising sigma shows the Fig. 7 trend.");
  return 0;
}
