// CIFAR-style convolutional workload on ReSiPE.
//
// Trains a compact CNN on the synthetic colored-shape task (the
// CIFAR-10 stand-in, see DESIGN.md), lowers every conv/dense layer
// onto single-spiking tiles, and reports hardware accuracy plus the
// tile/compute footprint of the mapping.
#include <cstdio>

#include "resipe/common/table.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/resipe/pipeline.hpp"

int main() {
  using namespace resipe;

  std::puts("=== Compact CNN on synthetic objects, lowered onto ReSiPE "
            "===\n");

  Rng data_rng(7);
  const nn::Dataset train = nn::synthetic_objects(1600, data_rng);
  const nn::Dataset test = nn::synthetic_objects(200, data_rng);

  Rng model_rng(3);
  nn::Sequential model("compact-cnn");
  model.emplace<nn::Conv2d>(3, 8, 3, 1, 1, model_rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);  // 16
  model.emplace<nn::Conv2d>(8, 16, 3, 1, 1, model_rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);  // 8
  model.emplace<nn::Conv2d>(16, 16, 3, 1, 1, model_rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);  // 4
  model.emplace<nn::Flatten>();     // 256
  model.emplace<nn::Dense>(256, 48, model_rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(48, 10, model_rng);
  std::puts(model.summary().c_str());

  nn::TrainConfig cfg;
  cfg.epochs = 7;
  cfg.lr = 1e-3;
  cfg.verbose = true;
  std::puts("training...");
  const auto result = nn::fit(model, train, test, cfg);
  std::printf("software accuracy: train %s, test %s\n\n",
              format_percent(result.train_accuracy).c_str(),
              format_percent(result.test_accuracy).c_str());

  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 16; ++i) idx.push_back(i);
  auto [calib, labels] = train.gather(idx);
  (void)labels;

  TextTable table({"Configuration", "Accuracy"});
  for (double sigma : {0.0, 0.10}) {
    resipe_core::EngineConfig ec;
    ec.device.variation_sigma = sigma;
    const resipe_core::ResipeNetwork hw(model, ec, calib);
    const double acc = nn::evaluate_with(
        test, [&hw](const nn::Tensor& b) { return hw.forward(b); });
    table.add_row({"ReSiPE, sigma = " + format_percent(sigma),
                   format_percent(acc)});
    if (sigma == 0.0) {
      std::printf("mapping: %zu matrix layers on %zu virtual 32x32 "
                  "tiles\n",
                  hw.programmed_layers(), hw.tile_count());
    }
  }
  std::puts(table.str().c_str());

  // Layer-pipeline view of this network (Fig. 1).
  const resipe_core::TwoSlicePipeline pipe(model.matrix_layer_count(),
                                           100e-9);
  std::printf("two-slice pipeline: %zu stages, input latency %s, one "
              "result per %s once full\n",
              pipe.layers(), format_si(pipe.input_latency(), "s").c_str(),
              format_si(pipe.initiation_interval(), "s").c_str());
  return 0;
}
