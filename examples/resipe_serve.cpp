// resipe_serve — resilient-serving demo on a replicated chip pool.
//
// Trains a small MLP on synthetic digits, lowers it onto a pool of
// replica chips (optionally with one defective replica), offers an
// open-loop Poisson trace through the deadline-aware scheduler and
// prints the serving report: throughput, latency percentiles, shed
// accounting, per-chip health, and the accuracy of the answers that
// were actually served.
//
//   resipe_serve [--chips N] [--rate R] [--duration S] [--deadline S]
//                [--defects RATE] [--train N] [--images N] [--epochs N]
//                [--seed K] [--tenants N] [--out FILE]
//                [--trace FILE] [--events FILE]
//                [--slo-window S] [--slo-latency S]
//                [--slo-latency-obj F] [--slo-avail-obj F]
//
// Every run journals the full request lifecycle (serve/trace.hpp),
// verifies the span-conservation audit (exit 1 on violation — every
// offered request must have exactly one terminal event and the journal
// must reconcile with the stats), and renders the per-tenant SLO /
// error-budget dashboard.  --trace exports the journal as a Chrome
// trace (chrome://tracing / ui.perfetto.dev) with one lane per chip
// and flow arrows per request; --events exports the raw NDJSON that
// tools/trace_check.py validates in CI.
//
// Everything runs on the virtual clock, so the whole trace is
// deterministic and bit-identical at any thread count.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "resipe/common/table.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/serve/pool.hpp"
#include "resipe/serve/scheduler.hpp"
#include "resipe/serve/slo.hpp"
#include "resipe/serve/trace.hpp"
#include "resipe/serve/traffic.hpp"
#include "resipe/telemetry/trace.hpp"

namespace {

using namespace resipe;

const char* arg_value(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const auto chips = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--chips", "3")));
  const double rate = std::atof(arg_value(argc, argv, "--rate", "2000"));
  const double duration =
      std::atof(arg_value(argc, argv, "--duration", "0.05"));
  const double deadline =
      std::atof(arg_value(argc, argv, "--deadline", "0.01"));
  const double defects = std::atof(arg_value(argc, argv, "--defects", "0"));
  const auto train_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--train", "256")));
  const auto test_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--images", "96")));
  const auto epochs = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--epochs", "3")));
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "42")));
  const auto tenants = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--tenants", "3")));
  const std::string out = arg_value(argc, argv, "--out", "");
  const std::string trace_out = arg_value(argc, argv, "--trace", "");
  const std::string events_out = arg_value(argc, argv, "--events", "");
  serve::SloConfig slo;
  slo.window = std::atof(arg_value(argc, argv, "--slo-window", "0.01"));
  // Default latency target: half the deadline — "answered comfortably",
  // not "squeaked in".
  slo.latency_target = std::atof(
      arg_value(argc, argv, "--slo-latency",
                std::to_string(deadline / 2.0).c_str()));
  slo.latency_objective =
      std::atof(arg_value(argc, argv, "--slo-latency-obj", "0.95"));
  slo.availability_objective =
      std::atof(arg_value(argc, argv, "--slo-avail-obj", "0.99"));
  if (chips == 0 || rate <= 0.0 || duration <= 0.0 || deadline <= 0.0 ||
      train_n == 0 || test_n == 0 || tenants == 0) {
    std::fprintf(stderr,
                 "--chips/--rate/--duration/--deadline/--train/--images/"
                 "--tenants must be positive\n");
    return 2;
  }

  try {
    // --- train a small model on synthetic digits.
    Rng data_rng(7);
    Rng train_rng = data_rng.split();
    Rng test_rng = data_rng.split();
    const nn::Dataset train = nn::synthetic_digits(train_n, train_rng);
    const nn::Dataset test = nn::synthetic_digits(test_n, test_rng);
    Rng model_rng(0xC0FFEEull);
    nn::Sequential model =
        nn::build_benchmark(nn::BenchmarkNet::kMlp1, model_rng);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 32;
    tc.lr = 1e-3;
    const auto tr = nn::fit(model, train, test, tc);
    std::printf("trained %s: test acc %.3f\n", model.name().c_str(),
                tr.test_accuracy);

    // --- lower one replica per chip; chip 0 optionally defective.
    std::vector<std::size_t> calib_idx;
    for (std::size_t i = 0; i < std::min<std::size_t>(48, train.size()); ++i)
      calib_idx.push_back(i);
    auto [calib, calib_labels] = train.gather(calib_idx);
    (void)calib_labels;

    std::vector<resipe_core::EngineConfig> replica_configs;
    for (std::size_t c = 0; c < chips; ++c) {
      resipe_core::EngineConfig ec;
      ec.program_seed = hash_seed(seed, 0xC41Bull, c);
      if (defects > 0.0 && c == 0) {
        ec.reliability.enabled = true;
        ec.reliability.faults.stuck_lrs_rate = defects / 2.0;
        ec.reliability.faults.stuck_hrs_rate = defects / 2.0;
        ec.reliability.fault_seed = hash_seed(seed, 0xFA17ull, c);
      }
      replica_configs.push_back(ec);
    }

    serve::ServeConfig scfg;
    scfg.default_deadline = deadline;
    scfg.seed = seed;
    serve::ChipPool pool(model, calib, replica_configs, scfg);
    std::printf("pool: %zu replica(s), %s defective\n", pool.size(),
                defects > 0.0 ? "chip 0" : "none");

    // --- offer an open-loop Poisson trace of test images.
    serve::TrafficConfig traffic;
    traffic.rate = rate;
    traffic.duration = duration;
    traffic.seed = hash_seed(seed, 0x7AFFull);
    traffic.tenants = tenants;
    const std::vector<serve::Request> trace =
        serve::poisson_traffic(test.images, traffic);

    serve::EventJournal journal;
    serve::Scheduler scheduler(pool, scfg);
    scheduler.attach_journal(&journal);
    for (const serve::Request& r : trace) scheduler.submit(r);
    const std::vector<serve::Response> responses = scheduler.run();
    const serve::ServingStats& stats = scheduler.stats();

    std::printf("\n== serving report (rate %.0f req/s, %zu offered) ==\n",
                rate, responses.size());
    std::fputs(stats.render().c_str(), stdout);

    // --- served accuracy: join responses back to dataset labels.
    std::size_t correct = 0, served = 0;
    for (const serve::Response& r : responses) {
      if (!r.served()) continue;
      ++served;
      std::size_t best = 0;
      for (std::size_t j = 1; j < r.logits.size(); ++j) {
        if (r.logits[j] > r.logits[best]) best = j;
      }
      if (static_cast<int>(best) == test.labels[r.tag]) ++correct;
    }
    const double acc =
        served > 0 ? static_cast<double>(correct) / served : 0.0;
    std::printf("served accuracy: %.3f (%zu/%zu)\n", acc, correct, served);

    TextTable chip_table({"chip", "state", "probes", "quar", "readmit",
                          "batches", "requests", "canary miss",
                          "canary rmse"});
    for (std::size_t c = 0; c < pool.size(); ++c) {
      const serve::ChipStatus& st = pool.status(c);
      chip_table.add_row({std::to_string(c), serve::to_string(st.state),
                          std::to_string(st.probes),
                          std::to_string(st.quarantines),
                          std::to_string(st.readmissions),
                          std::to_string(st.batches_served),
                          std::to_string(st.requests_served),
                          format_percent(st.last_canary_mismatch),
                          format_fixed(st.last_canary_rmse, 4)});
    }
    std::puts("");
    std::fputs(chip_table.str().c_str(), stdout);

    // --- span-conservation audit: every offered request must close
    // with exactly one terminal event and the journal must reconcile
    // exactly with the stats above.  A violation is a scheduler bug,
    // so it fails the run.
    const serve::TraceAudit audit = serve::audit_trace(journal, stats);
    std::puts("");
    std::fputs(audit.render().c_str(), stdout);
    if (!audit.ok()) {
      std::fprintf(stderr, "trace audit failed\n");
      return 1;
    }

    // --- per-tenant SLO / error-budget dashboard.
    serve::SloMonitor monitor(slo);
    monitor.ingest(responses);
    const serve::SloReport slo_report = monitor.report();
    std::puts("");
    std::fputs(slo_report.render().c_str(), stdout);

    if (!events_out.empty()) {
      serve::write_events_ndjson_file(journal, stats, events_out);
      std::printf("wrote %s (%zu events, %zu dropped)\n",
                  events_out.c_str(), journal.size(), journal.dropped());
    }
    if (!trace_out.empty()) {
      auto& session = telemetry::TraceSession::instance();
      serve::export_chrome_trace(journal, session);
      session.write_chrome_trace_file(trace_out);
      std::printf("wrote %s\n", trace_out.c_str());
    }

    if (!out.empty()) {
      std::ofstream os(out);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
      }
      os << "{\n"
         << "  \"offered\": " << stats.submitted << ",\n"
         << "  \"served_ok\": " << stats.served_ok << ",\n"
         << "  \"served_degraded\": " << stats.served_degraded << ",\n"
         << "  \"shed_queue_full\": " << stats.shed_queue_full << ",\n"
         << "  \"shed_deadline\": " << stats.shed_deadline << ",\n"
         << "  \"shed_quarantine\": " << stats.shed_quarantine << ",\n"
         << "  \"late_completions\": " << stats.late_completions << ",\n"
         << "  \"retries\": " << stats.retries << ",\n"
         << "  \"batches\": " << stats.batches << ",\n"
         << "  \"mean_batch\": " << stats.mean_batch << ",\n"
         << "  \"shed_rate\": " << stats.shed_rate() << ",\n"
         << "  \"throughput_rps\": " << stats.throughput << ",\n"
         << "  \"latency_p50_s\": " << stats.p50 << ",\n"
         << "  \"latency_p95_s\": " << stats.p95 << ",\n"
         << "  \"latency_p99_s\": " << stats.p99 << ",\n"
         << "  \"served_accuracy\": " << acc << ",\n"
         << "  \"healthy_chips\": " << pool.healthy_count() << ",\n"
         << "  \"pool_size\": " << pool.size() << ",\n"
         << "  \"trace_events\": " << journal.size() << ",\n"
         << "  \"trace_dropped\": " << journal.dropped() << ",\n"
         << "  \"audit_ok\": " << (audit.ok() ? "true" : "false") << ",\n"
         << "  \"tenants\": " << tenants << ",\n"
         << "  \"slo_availability_budget_used\": "
         << slo_report.total.availability_budget_used << ",\n"
         << "  \"slo_latency_budget_used\": "
         << slo_report.total.latency_budget_used << ",\n"
         << "  \"slo_availability_burn_max\": "
         << slo_report.total.availability_burn_max << ",\n"
         << "  \"slo_latency_burn_max\": "
         << slo_report.total.latency_burn_max << "\n"
         << "}\n";
      std::printf("wrote %s\n", out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
