// Quickstart: one single-spiking MAC on a ReSiPE tile, end to end.
//
// Walks the whole Sec. III story on a 4 x 2 tile:
//   1. encode two values as single spikes (arrival-time coding),
//   2. execute the two-slice MVM on the behavioral circuit model,
//   3. decode the output spikes back into values,
//   4. print the timing, the per-MVM energy breakdown, and the
//      two-slice pipeline schedule of a small network.
#include <cstdio>

#include "resipe/common/table.hpp"
#include "resipe/common/units.hpp"
#include "resipe/resipe/pipeline.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"

int main() {
  using namespace resipe;
  using namespace resipe::units;

  std::puts("=== ReSiPE quickstart ===\n");

  // --- 1. a tile with the paper's circuit parameters -------------------
  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  resipe_core::ResipeTile tile(params, /*rows=*/4, /*cols=*/2, spec);

  Rng rng(2020);
  // Conductance pattern: column 0 heavy on rows 0/1, column 1 on 2/3.
  const std::vector<double> g = {
      18e-6, 2e-6,   // row 0
      14e-6, 4e-6,   // row 1
      3e-6,  16e-6,  // row 2
      2e-6,  19e-6,  // row 3
  };
  tile.program(g, rng);

  // --- 2. encode inputs as single spikes -------------------------------
  const resipe_core::SpikeCodec codec(params);
  const std::vector<double> values = {0.8, 0.6, 0.3, 0.1};
  std::vector<circuits::Spike> inputs;
  std::printf("inputs (value -> spike arrival):\n");
  for (double v : values) {
    inputs.push_back(codec.encode(v));
    std::printf("  %.2f -> %s\n", v,
                format_si(inputs.back().arrival_time, "s").c_str());
  }

  // --- 3. the two-slice MVM ---------------------------------------------
  const auto outputs = tile.execute(inputs);
  std::printf("\noutputs (spike arrival -> decoded value):\n");
  for (std::size_t c = 0; c < outputs.size(); ++c) {
    std::printf("  column %zu: %s -> %.3f\n", c,
                outputs[c].valid()
                    ? format_si(outputs[c].arrival_time, "s").c_str()
                    : "(silent)",
                codec.decode(outputs[c]));
  }
  std::printf("\nMVM latency: %s (S1 + S2), new input every %s\n",
              format_si(tile.latency(), "s").c_str(),
              format_si(params.slice_length, "s").c_str());

  // --- 4. energy accounting ---------------------------------------------
  const auto report = tile.energy_report(inputs);
  std::printf("\nper-MVM energy: %s (COG cluster share: %s)\n\n",
              format_si(report.total_energy(), "J").c_str(),
              format_percent(report.energy_share("COG")).c_str());
  std::puts(report.breakdown().c_str());

  // --- 5. the Fig. 1 layer pipeline --------------------------------------
  const resipe_core::TwoSlicePipeline pipe(/*layers=*/3,
                                           params.slice_length);
  std::printf("3-layer pipeline: input latency %s, speedup for 8 streamed "
              "inputs: %.2fx\n\n",
              format_si(pipe.input_latency(), "s").c_str(),
              pipe.pipeline_speedup(8));
  std::puts(pipe.diagram(8).c_str());
  return 0;
}
