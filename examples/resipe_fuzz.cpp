// Generative differential-verification fuzzer.
//
// Generates seeded random engine configurations, checks every oracle
// contract against each, shrinks any violation to a minimal reproducer
// and (optionally) writes it as a committable JSON record.  Exit code
// is the violation count (0 = clean), so CI can gate on it directly.
//
//   resipe_fuzz --cases 1000                     # nightly sweep
//   resipe_fuzz --cases 500 --budget-s 120       # CI job
//   resipe_fuzz --seed0 7341 --cases 1           # replay one seed
//   resipe_fuzz --contract fast_vs_tile          # focus one invariant
//   resipe_fuzz --emit-repro out/                # write repro JSON
//   resipe_fuzz --replay tests/corpus/x.json     # re-check a record
//   resipe_fuzz --inject-bug fastmvm-row-drop    # harness self-test
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <filesystem>

#include "resipe/verify/contracts.hpp"
#include "resipe/verify/fuzzer.hpp"
#include "resipe/verify/generators.hpp"
#include "resipe/verify/serialize.hpp"
#include "resipe/verify/shrink.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --cases N            generated cases (default 100)\n"
      "  --budget-s S         wall-clock budget in seconds (0 = off)\n"
      "  --seed0 N            first seed of the range (default 1)\n"
      "  --contract NAME      check only this contract\n"
      "  --emit-repro DIR     write shrunk violations as JSON records\n"
      "  --no-shrink          report violations unshrunk\n"
      "  --max-failures N     stop after N violations (default 10)\n"
      "  --replay FILE        re-check one repro/corpus JSON record\n"
      "  --emit-corpus DIR    write generated cases as corpus records\n"
      "  --snippet FILE       print the C++ snippet for a record\n"
      "  --inject-bug NAME    arm a deliberate bug (fastmvm-row-drop)\n"
      "  --list-contracts     print the contract registry\n",
      argv0);
}

int check_one(const resipe::verify::CaseSpec& spec,
              const std::string& contract) {
  const auto result = resipe::verify::replay_case(spec, contract);
  std::printf("%s on %s: %s\n", contract.c_str(), spec.summary().c_str(),
              result.skipped ? "SKIP" : (result.pass ? "PASS" : "FAIL"));
  if (!result.detail.empty()) std::printf("  %s\n", result.detail.c_str());
  return result.violated() ? 1 : 0;
}

int replay_file(const std::string& path, bool print_snippet) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto record = resipe::verify::repro_from_json(buf.str());
  if (print_snippet) {
    std::printf("%s", resipe::verify::repro_snippet(record).c_str());
    return 0;
  }
  // Corpus records use contract "all": the case anchors every invariant.
  if (record.contract == "all") {
    int violations = 0;
    for (const auto& c : resipe::verify::contract_registry()) {
      violations += check_one(record.spec, c.name);
    }
    return violations > 0 ? 1 : 0;
  }
  return check_one(record.spec, record.contract);
}

int emit_corpus(const std::string& dir,
                const resipe::verify::FuzzOptions& options) {
  std::filesystem::create_directories(dir);
  for (std::uint64_t i = 0; i < options.cases; ++i) {
    const std::uint64_t seed = options.seed0 + i;
    resipe::verify::ReproRecord record;
    record.spec = resipe::verify::generate_case(
        resipe::verify::CaseDescriptor{resipe::verify::kSchemaVersion, seed});
    record.contract = "all";
    const auto path = std::filesystem::path(dir) /
                      ("case_seed" + std::to_string(seed) + ".json");
    std::ofstream out(path);
    out << resipe::verify::repro_to_json(record);
    std::printf("%s  %s\n", path.c_str(), record.spec.summary().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  resipe::verify::FuzzOptions options;
  std::string replay_path;
  std::string snippet_path;
  std::string corpus_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cases") {
      options.cases = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--budget-s") {
      options.budget_s = std::strtod(next(), nullptr);
    } else if (arg == "--seed0") {
      options.seed0 = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--contract") {
      options.contract_filter = next();
    } else if (arg == "--emit-repro") {
      options.repro_dir = next();
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--max-failures") {
      options.max_failures = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--emit-corpus") {
      corpus_dir = next();
    } else if (arg == "--snippet") {
      snippet_path = next();
    } else if (arg == "--inject-bug") {
      const std::string bug = next();
      if (bug == "fastmvm-row-drop") {
        resipe::verify::set_injected_bug(
            resipe::verify::InjectedBug::kFastMvmRowDrop);
      } else {
        std::fprintf(stderr, "unknown bug '%s'\n", bug.c_str());
        return 2;
      }
    } else if (arg == "--list-contracts") {
      for (const auto& c : resipe::verify::contract_registry()) {
        std::printf("%-24s %s\n", c.name.c_str(), c.description.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    if (!replay_path.empty() || !snippet_path.empty()) {
      const bool snippet = !snippet_path.empty();
      return replay_file(snippet ? snippet_path : replay_path, snippet);
    }
    if (!corpus_dir.empty()) return emit_corpus(corpus_dir, options);
    const auto report = resipe::verify::run_fuzz(options);
    std::printf("%s", report.render().c_str());
    std::printf("%s\n", report.bench_json().c_str());
    return report.violations() > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
