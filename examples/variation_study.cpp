// Device-level process-variation study.
//
// Programs a population of ReRAM cells at each Fig. 7 sigma, shows the
// resulting conductance spread, and traces how the spread propagates
// into single-spiking MVM fidelity — the microscopic mechanism behind
// the accuracy degradation of Fig. 7.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "resipe/common/stats.hpp"
#include "resipe/common/table.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/eval/fidelity.hpp"

int main() {
  using namespace resipe;

  std::puts("=== ReRAM process variation: device to MVM ===\n");

  const double target_g = 10e-6;  // mid-window target (100 k)
  TextTable t({"sigma", "mean G", "stddev/mean", "min..max",
               "MVM RMSE", "MVM worst"});
  for (double sigma : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    device::ReramSpec spec = device::ReramSpec::nn_mapping();
    spec.variation_sigma = sigma;
    spec.write_verify_tolerance = 0.0;

    Rng rng(123);
    std::vector<double> gs(4000);
    device::ReramCell cell;
    for (double& g : gs) {
      cell.program(spec, target_g, rng);
      g = cell.programmed_g();
    }
    const Summary s = summarize(gs);

    resipe_core::EngineConfig cfg;
    cfg.device.variation_sigma = sigma;
    const auto fidelity = eval::mvm_fidelity(cfg);

    t.add_row({format_percent(sigma), format_si(s.mean, "S"),
               format_percent(s.mean > 0 ? s.stddev / s.mean : 0.0),
               format_si(s.min, "S") + " .. " + format_si(s.max, "S"),
               format_percent(fidelity.rmse),
               format_percent(fidelity.worst)});
  }
  std::puts(t.str().c_str());

  std::puts("A conductance histogram at sigma = 20%:");
  {
    device::ReramSpec spec = device::ReramSpec::nn_mapping();
    spec.variation_sigma = 0.20;
    Rng rng(321);
    constexpr int kBins = 24;
    int bins[kBins] = {0};
    device::ReramCell cell;
    for (int i = 0; i < 4000; ++i) {
      cell.program(spec, target_g, rng);
      const double rel = cell.programmed_g() / target_g;  // ~N(1, 0.2)
      int bin = static_cast<int>((rel - 0.4) / 1.2 * kBins);
      if (bin >= 0 && bin < kBins) ++bins[bin];
    }
    int peak = 1;
    for (int b : bins) peak = std::max(peak, b);
    for (int b = 0; b < kBins; ++b) {
      const double rel = 0.4 + (b + 0.5) * 1.2 / kBins;
      std::printf("  %5.2f x target |", rel);
      const int stars = bins[b] * 48 / peak;
      for (int s = 0; s < stars; ++s) std::putchar('#');
      std::putchar('\n');
    }
  }
  return 0;
}
