file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ccog.dir/bench_ablation_ccog.cpp.o"
  "CMakeFiles/bench_ablation_ccog.dir/bench_ablation_ccog.cpp.o.d"
  "bench_ablation_ccog"
  "bench_ablation_ccog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ccog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
