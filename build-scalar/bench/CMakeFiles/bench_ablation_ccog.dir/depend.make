# Empty dependencies file for bench_ablation_ccog.
# This may be replaced when dependencies are built.
