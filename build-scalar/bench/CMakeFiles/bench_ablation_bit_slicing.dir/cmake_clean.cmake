file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bit_slicing.dir/bench_ablation_bit_slicing.cpp.o"
  "CMakeFiles/bench_ablation_bit_slicing.dir/bench_ablation_bit_slicing.cpp.o.d"
  "bench_ablation_bit_slicing"
  "bench_ablation_bit_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bit_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
