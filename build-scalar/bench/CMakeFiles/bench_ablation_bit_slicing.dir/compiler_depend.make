# Empty compiler generated dependencies file for bench_ablation_bit_slicing.
# This may be replaced when dependencies are built.
