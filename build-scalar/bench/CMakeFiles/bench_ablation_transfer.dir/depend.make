# Empty dependencies file for bench_ablation_transfer.
# This may be replaced when dependencies are built.
