file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transfer.dir/bench_ablation_transfer.cpp.o"
  "CMakeFiles/bench_ablation_transfer.dir/bench_ablation_transfer.cpp.o.d"
  "bench_ablation_transfer"
  "bench_ablation_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
