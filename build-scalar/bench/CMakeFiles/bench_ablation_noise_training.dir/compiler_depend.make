# Empty compiler generated dependencies file for bench_ablation_noise_training.
# This may be replaced when dependencies are built.
