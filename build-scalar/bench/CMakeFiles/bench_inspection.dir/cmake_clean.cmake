file(REMOVE_RECURSE
  "CMakeFiles/bench_inspection.dir/bench_inspection.cpp.o"
  "CMakeFiles/bench_inspection.dir/bench_inspection.cpp.o.d"
  "bench_inspection"
  "bench_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
