# Empty dependencies file for bench_inspection.
# This may be replaced when dependencies are built.
