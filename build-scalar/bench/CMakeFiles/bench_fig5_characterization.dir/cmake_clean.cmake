file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_characterization.dir/bench_fig5_characterization.cpp.o"
  "CMakeFiles/bench_fig5_characterization.dir/bench_fig5_characterization.cpp.o.d"
  "bench_fig5_characterization"
  "bench_fig5_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
