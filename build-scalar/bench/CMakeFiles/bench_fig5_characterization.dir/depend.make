# Empty dependencies file for bench_fig5_characterization.
# This may be replaced when dependencies are built.
