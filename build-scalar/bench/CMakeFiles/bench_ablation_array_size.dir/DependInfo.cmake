
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_array_size.cpp" "bench/CMakeFiles/bench_ablation_array_size.dir/bench_ablation_array_size.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_array_size.dir/bench_ablation_array_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/eval/CMakeFiles/resipe_eval.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/resipe/CMakeFiles/resipe_core.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/introspect/CMakeFiles/resipe_introspect.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/baselines/CMakeFiles/resipe_baselines.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/nn/CMakeFiles/resipe_nn.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/perf/CMakeFiles/resipe_perf.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/crossbar/CMakeFiles/resipe_crossbar.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/circuits/CMakeFiles/resipe_circuits.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/reliability/CMakeFiles/resipe_reliability.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/device/CMakeFiles/resipe_device.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/energy/CMakeFiles/resipe_energy.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/telemetry/CMakeFiles/resipe_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
