file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reliability.dir/bench_ablation_reliability.cpp.o"
  "CMakeFiles/bench_ablation_reliability.dir/bench_ablation_reliability.cpp.o.d"
  "bench_ablation_reliability"
  "bench_ablation_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
