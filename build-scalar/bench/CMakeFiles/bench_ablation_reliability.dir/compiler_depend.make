# Empty compiler generated dependencies file for bench_ablation_reliability.
# This may be replaced when dependencies are built.
