file(REMOVE_RECURSE
  "CMakeFiles/bench_layer_precision.dir/bench_layer_precision.cpp.o"
  "CMakeFiles/bench_layer_precision.dir/bench_layer_precision.cpp.o.d"
  "bench_layer_precision"
  "bench_layer_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layer_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
