# Empty compiler generated dependencies file for bench_layer_precision.
# This may be replaced when dependencies are built.
