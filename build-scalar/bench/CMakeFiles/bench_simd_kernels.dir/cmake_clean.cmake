file(REMOVE_RECURSE
  "CMakeFiles/bench_simd_kernels.dir/bench_simd_kernels.cpp.o"
  "CMakeFiles/bench_simd_kernels.dir/bench_simd_kernels.cpp.o.d"
  "bench_simd_kernels"
  "bench_simd_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simd_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
