# Empty dependencies file for bench_simd_kernels.
# This may be replaced when dependencies are built.
