file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_yield.dir/bench_ablation_yield.cpp.o"
  "CMakeFiles/bench_ablation_yield.dir/bench_ablation_yield.cpp.o.d"
  "bench_ablation_yield"
  "bench_ablation_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
