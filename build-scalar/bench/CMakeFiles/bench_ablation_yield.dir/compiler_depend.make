# Empty compiler generated dependencies file for bench_ablation_yield.
# This may be replaced when dependencies are built.
