file(REMOVE_RECURSE
  "CMakeFiles/mnist_mlp.dir/mnist_mlp.cpp.o"
  "CMakeFiles/mnist_mlp.dir/mnist_mlp.cpp.o.d"
  "mnist_mlp"
  "mnist_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
