# Empty compiler generated dependencies file for mnist_mlp.
# This may be replaced when dependencies are built.
