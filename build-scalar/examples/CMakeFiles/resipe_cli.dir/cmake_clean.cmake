file(REMOVE_RECURSE
  "CMakeFiles/resipe_cli.dir/resipe_cli.cpp.o"
  "CMakeFiles/resipe_cli.dir/resipe_cli.cpp.o.d"
  "resipe_cli"
  "resipe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
