# Empty compiler generated dependencies file for resipe_cli.
# This may be replaced when dependencies are built.
