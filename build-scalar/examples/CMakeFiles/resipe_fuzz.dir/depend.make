# Empty dependencies file for resipe_fuzz.
# This may be replaced when dependencies are built.
