file(REMOVE_RECURSE
  "CMakeFiles/resipe_fuzz.dir/resipe_fuzz.cpp.o"
  "CMakeFiles/resipe_fuzz.dir/resipe_fuzz.cpp.o.d"
  "resipe_fuzz"
  "resipe_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
