file(REMOVE_RECURSE
  "CMakeFiles/pipeline_throughput.dir/pipeline_throughput.cpp.o"
  "CMakeFiles/pipeline_throughput.dir/pipeline_throughput.cpp.o.d"
  "pipeline_throughput"
  "pipeline_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
