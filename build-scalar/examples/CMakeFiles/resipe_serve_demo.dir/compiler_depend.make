# Empty compiler generated dependencies file for resipe_serve_demo.
# This may be replaced when dependencies are built.
