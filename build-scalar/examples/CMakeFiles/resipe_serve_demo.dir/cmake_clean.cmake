file(REMOVE_RECURSE
  "CMakeFiles/resipe_serve_demo.dir/resipe_serve.cpp.o"
  "CMakeFiles/resipe_serve_demo.dir/resipe_serve.cpp.o.d"
  "resipe_serve"
  "resipe_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_serve_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
