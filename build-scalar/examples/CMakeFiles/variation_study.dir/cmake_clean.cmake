file(REMOVE_RECURSE
  "CMakeFiles/variation_study.dir/variation_study.cpp.o"
  "CMakeFiles/variation_study.dir/variation_study.cpp.o.d"
  "variation_study"
  "variation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
