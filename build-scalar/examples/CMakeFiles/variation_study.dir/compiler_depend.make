# Empty compiler generated dependencies file for variation_study.
# This may be replaced when dependencies are built.
