# Empty compiler generated dependencies file for cifar_cnn.
# This may be replaced when dependencies are built.
