file(REMOVE_RECURSE
  "CMakeFiles/cifar_cnn.dir/cifar_cnn.cpp.o"
  "CMakeFiles/cifar_cnn.dir/cifar_cnn.cpp.o.d"
  "cifar_cnn"
  "cifar_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
