
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/components.cpp" "src/energy/CMakeFiles/resipe_energy.dir/components.cpp.o" "gcc" "src/energy/CMakeFiles/resipe_energy.dir/components.cpp.o.d"
  "/root/repo/src/energy/design.cpp" "src/energy/CMakeFiles/resipe_energy.dir/design.cpp.o" "gcc" "src/energy/CMakeFiles/resipe_energy.dir/design.cpp.o.d"
  "/root/repo/src/energy/report.cpp" "src/energy/CMakeFiles/resipe_energy.dir/report.cpp.o" "gcc" "src/energy/CMakeFiles/resipe_energy.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
