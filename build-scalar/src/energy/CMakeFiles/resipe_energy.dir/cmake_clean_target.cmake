file(REMOVE_RECURSE
  "libresipe_energy.a"
)
