# Empty dependencies file for resipe_energy.
# This may be replaced when dependencies are built.
