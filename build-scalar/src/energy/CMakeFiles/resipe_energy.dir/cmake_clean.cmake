file(REMOVE_RECURSE
  "CMakeFiles/resipe_energy.dir/components.cpp.o"
  "CMakeFiles/resipe_energy.dir/components.cpp.o.d"
  "CMakeFiles/resipe_energy.dir/design.cpp.o"
  "CMakeFiles/resipe_energy.dir/design.cpp.o.d"
  "CMakeFiles/resipe_energy.dir/report.cpp.o"
  "CMakeFiles/resipe_energy.dir/report.cpp.o.d"
  "libresipe_energy.a"
  "libresipe_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
