# CMake generated Testfile for 
# Source directory: /root/repo/src/crossbar
# Build directory: /root/repo/build-scalar/src/crossbar
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
