file(REMOVE_RECURSE
  "libresipe_crossbar.a"
)
