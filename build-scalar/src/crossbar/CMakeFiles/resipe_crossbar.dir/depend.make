# Empty dependencies file for resipe_crossbar.
# This may be replaced when dependencies are built.
