file(REMOVE_RECURSE
  "CMakeFiles/resipe_crossbar.dir/crossbar.cpp.o"
  "CMakeFiles/resipe_crossbar.dir/crossbar.cpp.o.d"
  "CMakeFiles/resipe_crossbar.dir/ir_drop.cpp.o"
  "CMakeFiles/resipe_crossbar.dir/ir_drop.cpp.o.d"
  "CMakeFiles/resipe_crossbar.dir/mapping.cpp.o"
  "CMakeFiles/resipe_crossbar.dir/mapping.cpp.o.d"
  "libresipe_crossbar.a"
  "libresipe_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
