
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crossbar/crossbar.cpp" "src/crossbar/CMakeFiles/resipe_crossbar.dir/crossbar.cpp.o" "gcc" "src/crossbar/CMakeFiles/resipe_crossbar.dir/crossbar.cpp.o.d"
  "/root/repo/src/crossbar/ir_drop.cpp" "src/crossbar/CMakeFiles/resipe_crossbar.dir/ir_drop.cpp.o" "gcc" "src/crossbar/CMakeFiles/resipe_crossbar.dir/ir_drop.cpp.o.d"
  "/root/repo/src/crossbar/mapping.cpp" "src/crossbar/CMakeFiles/resipe_crossbar.dir/mapping.cpp.o" "gcc" "src/crossbar/CMakeFiles/resipe_crossbar.dir/mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/telemetry/CMakeFiles/resipe_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/perf/CMakeFiles/resipe_perf.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/device/CMakeFiles/resipe_device.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/reliability/CMakeFiles/resipe_reliability.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/circuits/CMakeFiles/resipe_circuits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
