# Empty dependencies file for resipe_verify.
# This may be replaced when dependencies are built.
