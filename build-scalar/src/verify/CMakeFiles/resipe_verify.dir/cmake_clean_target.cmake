file(REMOVE_RECURSE
  "libresipe_verify.a"
)
