file(REMOVE_RECURSE
  "CMakeFiles/resipe_verify.dir/approx.cpp.o"
  "CMakeFiles/resipe_verify.dir/approx.cpp.o.d"
  "CMakeFiles/resipe_verify.dir/contracts.cpp.o"
  "CMakeFiles/resipe_verify.dir/contracts.cpp.o.d"
  "CMakeFiles/resipe_verify.dir/fuzzer.cpp.o"
  "CMakeFiles/resipe_verify.dir/fuzzer.cpp.o.d"
  "CMakeFiles/resipe_verify.dir/generators.cpp.o"
  "CMakeFiles/resipe_verify.dir/generators.cpp.o.d"
  "CMakeFiles/resipe_verify.dir/ode_oracle.cpp.o"
  "CMakeFiles/resipe_verify.dir/ode_oracle.cpp.o.d"
  "CMakeFiles/resipe_verify.dir/serialize.cpp.o"
  "CMakeFiles/resipe_verify.dir/serialize.cpp.o.d"
  "CMakeFiles/resipe_verify.dir/shrink.cpp.o"
  "CMakeFiles/resipe_verify.dir/shrink.cpp.o.d"
  "libresipe_verify.a"
  "libresipe_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
