file(REMOVE_RECURSE
  "CMakeFiles/resipe_device.dir/reram.cpp.o"
  "CMakeFiles/resipe_device.dir/reram.cpp.o.d"
  "libresipe_device.a"
  "libresipe_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
