# Empty dependencies file for resipe_device.
# This may be replaced when dependencies are built.
