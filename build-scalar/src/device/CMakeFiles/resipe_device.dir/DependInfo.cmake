
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/reram.cpp" "src/device/CMakeFiles/resipe_device.dir/reram.cpp.o" "gcc" "src/device/CMakeFiles/resipe_device.dir/reram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/telemetry/CMakeFiles/resipe_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
