file(REMOVE_RECURSE
  "libresipe_device.a"
)
