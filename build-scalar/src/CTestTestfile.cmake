# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-scalar/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("telemetry")
subdirs("perf")
subdirs("device")
subdirs("reliability")
subdirs("circuits")
subdirs("crossbar")
subdirs("energy")
subdirs("nn")
subdirs("resipe")
subdirs("introspect")
subdirs("baselines")
subdirs("eval")
subdirs("serve")
subdirs("verify")
