
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/column_output_generator.cpp" "src/circuits/CMakeFiles/resipe_circuits.dir/column_output_generator.cpp.o" "gcc" "src/circuits/CMakeFiles/resipe_circuits.dir/column_output_generator.cpp.o.d"
  "/root/repo/src/circuits/global_decoder.cpp" "src/circuits/CMakeFiles/resipe_circuits.dir/global_decoder.cpp.o" "gcc" "src/circuits/CMakeFiles/resipe_circuits.dir/global_decoder.cpp.o.d"
  "/root/repo/src/circuits/params.cpp" "src/circuits/CMakeFiles/resipe_circuits.dir/params.cpp.o" "gcc" "src/circuits/CMakeFiles/resipe_circuits.dir/params.cpp.o.d"
  "/root/repo/src/circuits/rc_stage.cpp" "src/circuits/CMakeFiles/resipe_circuits.dir/rc_stage.cpp.o" "gcc" "src/circuits/CMakeFiles/resipe_circuits.dir/rc_stage.cpp.o.d"
  "/root/repo/src/circuits/sample_hold.cpp" "src/circuits/CMakeFiles/resipe_circuits.dir/sample_hold.cpp.o" "gcc" "src/circuits/CMakeFiles/resipe_circuits.dir/sample_hold.cpp.o.d"
  "/root/repo/src/circuits/transient.cpp" "src/circuits/CMakeFiles/resipe_circuits.dir/transient.cpp.o" "gcc" "src/circuits/CMakeFiles/resipe_circuits.dir/transient.cpp.o.d"
  "/root/repo/src/circuits/waveform.cpp" "src/circuits/CMakeFiles/resipe_circuits.dir/waveform.cpp.o" "gcc" "src/circuits/CMakeFiles/resipe_circuits.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/perf/CMakeFiles/resipe_perf.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/telemetry/CMakeFiles/resipe_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
