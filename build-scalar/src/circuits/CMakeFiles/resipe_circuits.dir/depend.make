# Empty dependencies file for resipe_circuits.
# This may be replaced when dependencies are built.
