file(REMOVE_RECURSE
  "CMakeFiles/resipe_circuits.dir/column_output_generator.cpp.o"
  "CMakeFiles/resipe_circuits.dir/column_output_generator.cpp.o.d"
  "CMakeFiles/resipe_circuits.dir/global_decoder.cpp.o"
  "CMakeFiles/resipe_circuits.dir/global_decoder.cpp.o.d"
  "CMakeFiles/resipe_circuits.dir/params.cpp.o"
  "CMakeFiles/resipe_circuits.dir/params.cpp.o.d"
  "CMakeFiles/resipe_circuits.dir/rc_stage.cpp.o"
  "CMakeFiles/resipe_circuits.dir/rc_stage.cpp.o.d"
  "CMakeFiles/resipe_circuits.dir/sample_hold.cpp.o"
  "CMakeFiles/resipe_circuits.dir/sample_hold.cpp.o.d"
  "CMakeFiles/resipe_circuits.dir/transient.cpp.o"
  "CMakeFiles/resipe_circuits.dir/transient.cpp.o.d"
  "CMakeFiles/resipe_circuits.dir/waveform.cpp.o"
  "CMakeFiles/resipe_circuits.dir/waveform.cpp.o.d"
  "libresipe_circuits.a"
  "libresipe_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
