file(REMOVE_RECURSE
  "libresipe_circuits.a"
)
