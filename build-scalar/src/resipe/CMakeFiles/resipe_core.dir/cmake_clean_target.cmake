file(REMOVE_RECURSE
  "libresipe_core.a"
)
