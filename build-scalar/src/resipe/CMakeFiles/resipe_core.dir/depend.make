# Empty dependencies file for resipe_core.
# This may be replaced when dependencies are built.
