file(REMOVE_RECURSE
  "CMakeFiles/resipe_core.dir/bit_slicing.cpp.o"
  "CMakeFiles/resipe_core.dir/bit_slicing.cpp.o.d"
  "CMakeFiles/resipe_core.dir/chip.cpp.o"
  "CMakeFiles/resipe_core.dir/chip.cpp.o.d"
  "CMakeFiles/resipe_core.dir/design.cpp.o"
  "CMakeFiles/resipe_core.dir/design.cpp.o.d"
  "CMakeFiles/resipe_core.dir/fast_mvm.cpp.o"
  "CMakeFiles/resipe_core.dir/fast_mvm.cpp.o.d"
  "CMakeFiles/resipe_core.dir/network.cpp.o"
  "CMakeFiles/resipe_core.dir/network.cpp.o.d"
  "CMakeFiles/resipe_core.dir/pipeline.cpp.o"
  "CMakeFiles/resipe_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/resipe_core.dir/spike_code.cpp.o"
  "CMakeFiles/resipe_core.dir/spike_code.cpp.o.d"
  "CMakeFiles/resipe_core.dir/tile.cpp.o"
  "CMakeFiles/resipe_core.dir/tile.cpp.o.d"
  "libresipe_core.a"
  "libresipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
