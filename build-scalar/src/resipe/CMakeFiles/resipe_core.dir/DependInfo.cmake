
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resipe/bit_slicing.cpp" "src/resipe/CMakeFiles/resipe_core.dir/bit_slicing.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/bit_slicing.cpp.o.d"
  "/root/repo/src/resipe/chip.cpp" "src/resipe/CMakeFiles/resipe_core.dir/chip.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/chip.cpp.o.d"
  "/root/repo/src/resipe/design.cpp" "src/resipe/CMakeFiles/resipe_core.dir/design.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/design.cpp.o.d"
  "/root/repo/src/resipe/fast_mvm.cpp" "src/resipe/CMakeFiles/resipe_core.dir/fast_mvm.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/fast_mvm.cpp.o.d"
  "/root/repo/src/resipe/network.cpp" "src/resipe/CMakeFiles/resipe_core.dir/network.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/network.cpp.o.d"
  "/root/repo/src/resipe/pipeline.cpp" "src/resipe/CMakeFiles/resipe_core.dir/pipeline.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/resipe/spike_code.cpp" "src/resipe/CMakeFiles/resipe_core.dir/spike_code.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/spike_code.cpp.o.d"
  "/root/repo/src/resipe/tile.cpp" "src/resipe/CMakeFiles/resipe_core.dir/tile.cpp.o" "gcc" "src/resipe/CMakeFiles/resipe_core.dir/tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/telemetry/CMakeFiles/resipe_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/perf/CMakeFiles/resipe_perf.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/device/CMakeFiles/resipe_device.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/circuits/CMakeFiles/resipe_circuits.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/crossbar/CMakeFiles/resipe_crossbar.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/energy/CMakeFiles/resipe_energy.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/nn/CMakeFiles/resipe_nn.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/reliability/CMakeFiles/resipe_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
