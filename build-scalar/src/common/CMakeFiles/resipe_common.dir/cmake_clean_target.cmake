file(REMOVE_RECURSE
  "libresipe_common.a"
)
