# Empty dependencies file for resipe_common.
# This may be replaced when dependencies are built.
