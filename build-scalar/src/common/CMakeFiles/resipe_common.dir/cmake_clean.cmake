file(REMOVE_RECURSE
  "CMakeFiles/resipe_common.dir/csv.cpp.o"
  "CMakeFiles/resipe_common.dir/csv.cpp.o.d"
  "CMakeFiles/resipe_common.dir/parallel.cpp.o"
  "CMakeFiles/resipe_common.dir/parallel.cpp.o.d"
  "CMakeFiles/resipe_common.dir/rng.cpp.o"
  "CMakeFiles/resipe_common.dir/rng.cpp.o.d"
  "CMakeFiles/resipe_common.dir/stats.cpp.o"
  "CMakeFiles/resipe_common.dir/stats.cpp.o.d"
  "CMakeFiles/resipe_common.dir/table.cpp.o"
  "CMakeFiles/resipe_common.dir/table.cpp.o.d"
  "libresipe_common.a"
  "libresipe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
