# CMake generated Testfile for 
# Source directory: /root/repo/src/introspect
# Build directory: /root/repo/build-scalar/src/introspect
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
