file(REMOVE_RECURSE
  "libresipe_introspect.a"
)
