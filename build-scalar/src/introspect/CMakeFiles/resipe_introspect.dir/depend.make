# Empty dependencies file for resipe_introspect.
# This may be replaced when dependencies are built.
