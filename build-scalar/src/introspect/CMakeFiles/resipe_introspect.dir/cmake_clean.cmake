file(REMOVE_RECURSE
  "CMakeFiles/resipe_introspect.dir/inspect.cpp.o"
  "CMakeFiles/resipe_introspect.dir/inspect.cpp.o.d"
  "CMakeFiles/resipe_introspect.dir/report.cpp.o"
  "CMakeFiles/resipe_introspect.dir/report.cpp.o.d"
  "libresipe_introspect.a"
  "libresipe_introspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_introspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
