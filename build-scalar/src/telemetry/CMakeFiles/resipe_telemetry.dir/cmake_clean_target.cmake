file(REMOVE_RECURSE
  "libresipe_telemetry.a"
)
