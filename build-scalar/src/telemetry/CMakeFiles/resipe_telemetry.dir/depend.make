# Empty dependencies file for resipe_telemetry.
# This may be replaced when dependencies are built.
