
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/export.cpp" "src/telemetry/CMakeFiles/resipe_telemetry.dir/export.cpp.o" "gcc" "src/telemetry/CMakeFiles/resipe_telemetry.dir/export.cpp.o.d"
  "/root/repo/src/telemetry/metrics.cpp" "src/telemetry/CMakeFiles/resipe_telemetry.dir/metrics.cpp.o" "gcc" "src/telemetry/CMakeFiles/resipe_telemetry.dir/metrics.cpp.o.d"
  "/root/repo/src/telemetry/timer.cpp" "src/telemetry/CMakeFiles/resipe_telemetry.dir/timer.cpp.o" "gcc" "src/telemetry/CMakeFiles/resipe_telemetry.dir/timer.cpp.o.d"
  "/root/repo/src/telemetry/trace.cpp" "src/telemetry/CMakeFiles/resipe_telemetry.dir/trace.cpp.o" "gcc" "src/telemetry/CMakeFiles/resipe_telemetry.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
