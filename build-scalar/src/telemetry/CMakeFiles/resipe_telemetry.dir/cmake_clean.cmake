file(REMOVE_RECURSE
  "CMakeFiles/resipe_telemetry.dir/export.cpp.o"
  "CMakeFiles/resipe_telemetry.dir/export.cpp.o.d"
  "CMakeFiles/resipe_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/resipe_telemetry.dir/metrics.cpp.o.d"
  "CMakeFiles/resipe_telemetry.dir/timer.cpp.o"
  "CMakeFiles/resipe_telemetry.dir/timer.cpp.o.d"
  "CMakeFiles/resipe_telemetry.dir/trace.cpp.o"
  "CMakeFiles/resipe_telemetry.dir/trace.cpp.o.d"
  "libresipe_telemetry.a"
  "libresipe_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
