# Empty dependencies file for resipe_reliability.
# This may be replaced when dependencies are built.
