file(REMOVE_RECURSE
  "CMakeFiles/resipe_reliability.dir/config.cpp.o"
  "CMakeFiles/resipe_reliability.dir/config.cpp.o.d"
  "CMakeFiles/resipe_reliability.dir/fault_mapper.cpp.o"
  "CMakeFiles/resipe_reliability.dir/fault_mapper.cpp.o.d"
  "CMakeFiles/resipe_reliability.dir/fault_model.cpp.o"
  "CMakeFiles/resipe_reliability.dir/fault_model.cpp.o.d"
  "libresipe_reliability.a"
  "libresipe_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
