file(REMOVE_RECURSE
  "libresipe_reliability.a"
)
