
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/config.cpp" "src/reliability/CMakeFiles/resipe_reliability.dir/config.cpp.o" "gcc" "src/reliability/CMakeFiles/resipe_reliability.dir/config.cpp.o.d"
  "/root/repo/src/reliability/fault_mapper.cpp" "src/reliability/CMakeFiles/resipe_reliability.dir/fault_mapper.cpp.o" "gcc" "src/reliability/CMakeFiles/resipe_reliability.dir/fault_mapper.cpp.o.d"
  "/root/repo/src/reliability/fault_model.cpp" "src/reliability/CMakeFiles/resipe_reliability.dir/fault_model.cpp.o" "gcc" "src/reliability/CMakeFiles/resipe_reliability.dir/fault_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/telemetry/CMakeFiles/resipe_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/device/CMakeFiles/resipe_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
