# Empty dependencies file for resipe_perf.
# This may be replaced when dependencies are built.
