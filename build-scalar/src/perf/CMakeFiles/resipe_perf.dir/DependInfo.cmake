
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/machine.cpp" "src/perf/CMakeFiles/resipe_perf.dir/machine.cpp.o" "gcc" "src/perf/CMakeFiles/resipe_perf.dir/machine.cpp.o.d"
  "/root/repo/src/perf/perf_counters.cpp" "src/perf/CMakeFiles/resipe_perf.dir/perf_counters.cpp.o" "gcc" "src/perf/CMakeFiles/resipe_perf.dir/perf_counters.cpp.o.d"
  "/root/repo/src/perf/roofline.cpp" "src/perf/CMakeFiles/resipe_perf.dir/roofline.cpp.o" "gcc" "src/perf/CMakeFiles/resipe_perf.dir/roofline.cpp.o.d"
  "/root/repo/src/perf/work_model.cpp" "src/perf/CMakeFiles/resipe_perf.dir/work_model.cpp.o" "gcc" "src/perf/CMakeFiles/resipe_perf.dir/work_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/telemetry/CMakeFiles/resipe_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
