file(REMOVE_RECURSE
  "libresipe_perf.a"
)
