file(REMOVE_RECURSE
  "CMakeFiles/resipe_perf.dir/machine.cpp.o"
  "CMakeFiles/resipe_perf.dir/machine.cpp.o.d"
  "CMakeFiles/resipe_perf.dir/perf_counters.cpp.o"
  "CMakeFiles/resipe_perf.dir/perf_counters.cpp.o.d"
  "CMakeFiles/resipe_perf.dir/roofline.cpp.o"
  "CMakeFiles/resipe_perf.dir/roofline.cpp.o.d"
  "CMakeFiles/resipe_perf.dir/work_model.cpp.o"
  "CMakeFiles/resipe_perf.dir/work_model.cpp.o.d"
  "libresipe_perf.a"
  "libresipe_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
