file(REMOVE_RECURSE
  "libresipe_baselines.a"
)
