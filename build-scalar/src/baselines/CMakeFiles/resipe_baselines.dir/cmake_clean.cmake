file(REMOVE_RECURSE
  "CMakeFiles/resipe_baselines.dir/level_based.cpp.o"
  "CMakeFiles/resipe_baselines.dir/level_based.cpp.o.d"
  "CMakeFiles/resipe_baselines.dir/pwm_based.cpp.o"
  "CMakeFiles/resipe_baselines.dir/pwm_based.cpp.o.d"
  "CMakeFiles/resipe_baselines.dir/rate_coding.cpp.o"
  "CMakeFiles/resipe_baselines.dir/rate_coding.cpp.o.d"
  "CMakeFiles/resipe_baselines.dir/temporal_coding.cpp.o"
  "CMakeFiles/resipe_baselines.dir/temporal_coding.cpp.o.d"
  "libresipe_baselines.a"
  "libresipe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
