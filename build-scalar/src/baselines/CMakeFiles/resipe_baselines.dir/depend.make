# Empty dependencies file for resipe_baselines.
# This may be replaced when dependencies are built.
