file(REMOVE_RECURSE
  "libresipe_eval.a"
)
