# Empty dependencies file for resipe_eval.
# This may be replaced when dependencies are built.
