file(REMOVE_RECURSE
  "CMakeFiles/resipe_eval.dir/accuracy.cpp.o"
  "CMakeFiles/resipe_eval.dir/accuracy.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/characterization.cpp.o"
  "CMakeFiles/resipe_eval.dir/characterization.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/comparison.cpp.o"
  "CMakeFiles/resipe_eval.dir/comparison.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/fault_tolerance.cpp.o"
  "CMakeFiles/resipe_eval.dir/fault_tolerance.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/fidelity.cpp.o"
  "CMakeFiles/resipe_eval.dir/fidelity.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/precision.cpp.o"
  "CMakeFiles/resipe_eval.dir/precision.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/taxonomy.cpp.o"
  "CMakeFiles/resipe_eval.dir/taxonomy.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/throughput.cpp.o"
  "CMakeFiles/resipe_eval.dir/throughput.cpp.o.d"
  "CMakeFiles/resipe_eval.dir/yield.cpp.o"
  "CMakeFiles/resipe_eval.dir/yield.cpp.o.d"
  "libresipe_eval.a"
  "libresipe_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
