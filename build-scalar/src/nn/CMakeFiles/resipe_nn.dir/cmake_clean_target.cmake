file(REMOVE_RECURSE
  "libresipe_nn.a"
)
