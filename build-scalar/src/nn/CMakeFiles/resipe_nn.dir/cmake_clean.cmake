file(REMOVE_RECURSE
  "CMakeFiles/resipe_nn.dir/activation.cpp.o"
  "CMakeFiles/resipe_nn.dir/activation.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/resipe_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/conv.cpp.o"
  "CMakeFiles/resipe_nn.dir/conv.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/data.cpp.o"
  "CMakeFiles/resipe_nn.dir/data.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/dense.cpp.o"
  "CMakeFiles/resipe_nn.dir/dense.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/model.cpp.o"
  "CMakeFiles/resipe_nn.dir/model.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/pool.cpp.o"
  "CMakeFiles/resipe_nn.dir/pool.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/serialize.cpp.o"
  "CMakeFiles/resipe_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/tensor.cpp.o"
  "CMakeFiles/resipe_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/train.cpp.o"
  "CMakeFiles/resipe_nn.dir/train.cpp.o.d"
  "CMakeFiles/resipe_nn.dir/zoo.cpp.o"
  "CMakeFiles/resipe_nn.dir/zoo.cpp.o.d"
  "libresipe_nn.a"
  "libresipe_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
