# Empty dependencies file for resipe_nn.
# This may be replaced when dependencies are built.
