
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/resipe_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/resipe_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/resipe_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/data.cpp" "src/nn/CMakeFiles/resipe_nn.dir/data.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/data.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/resipe_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/resipe_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/resipe_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/resipe_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/resipe_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/resipe_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/train.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/nn/CMakeFiles/resipe_nn.dir/zoo.cpp.o" "gcc" "src/nn/CMakeFiles/resipe_nn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-scalar/src/common/CMakeFiles/resipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
