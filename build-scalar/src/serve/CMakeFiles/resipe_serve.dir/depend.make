# Empty dependencies file for resipe_serve.
# This may be replaced when dependencies are built.
