file(REMOVE_RECURSE
  "libresipe_serve.a"
)
