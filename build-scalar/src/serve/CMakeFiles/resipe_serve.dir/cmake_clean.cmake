file(REMOVE_RECURSE
  "CMakeFiles/resipe_serve.dir/pool.cpp.o"
  "CMakeFiles/resipe_serve.dir/pool.cpp.o.d"
  "CMakeFiles/resipe_serve.dir/scheduler.cpp.o"
  "CMakeFiles/resipe_serve.dir/scheduler.cpp.o.d"
  "CMakeFiles/resipe_serve.dir/traffic.cpp.o"
  "CMakeFiles/resipe_serve.dir/traffic.cpp.o.d"
  "libresipe_serve.a"
  "libresipe_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resipe_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
