# Empty dependencies file for test_nn_tensor.
# This may be replaced when dependencies are built.
