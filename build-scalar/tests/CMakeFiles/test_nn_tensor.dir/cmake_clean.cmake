file(REMOVE_RECURSE
  "CMakeFiles/test_nn_tensor.dir/test_nn_tensor.cpp.o"
  "CMakeFiles/test_nn_tensor.dir/test_nn_tensor.cpp.o.d"
  "test_nn_tensor"
  "test_nn_tensor.pdb"
  "test_nn_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
