file(REMOVE_RECURSE
  "CMakeFiles/test_chip.dir/test_chip.cpp.o"
  "CMakeFiles/test_chip.dir/test_chip.cpp.o.d"
  "test_chip"
  "test_chip.pdb"
  "test_chip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
