# Empty dependencies file for test_chip.
# This may be replaced when dependencies are built.
