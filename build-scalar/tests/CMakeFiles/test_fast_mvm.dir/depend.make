# Empty dependencies file for test_fast_mvm.
# This may be replaced when dependencies are built.
