file(REMOVE_RECURSE
  "CMakeFiles/test_fast_mvm.dir/test_fast_mvm.cpp.o"
  "CMakeFiles/test_fast_mvm.dir/test_fast_mvm.cpp.o.d"
  "test_fast_mvm"
  "test_fast_mvm.pdb"
  "test_fast_mvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fast_mvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
