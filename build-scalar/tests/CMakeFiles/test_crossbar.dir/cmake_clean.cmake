file(REMOVE_RECURSE
  "CMakeFiles/test_crossbar.dir/test_crossbar.cpp.o"
  "CMakeFiles/test_crossbar.dir/test_crossbar.cpp.o.d"
  "test_crossbar"
  "test_crossbar.pdb"
  "test_crossbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
