# Empty compiler generated dependencies file for test_nn_grad.
# This may be replaced when dependencies are built.
