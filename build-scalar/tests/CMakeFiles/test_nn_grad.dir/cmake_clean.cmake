file(REMOVE_RECURSE
  "CMakeFiles/test_nn_grad.dir/test_nn_grad.cpp.o"
  "CMakeFiles/test_nn_grad.dir/test_nn_grad.cpp.o.d"
  "test_nn_grad"
  "test_nn_grad.pdb"
  "test_nn_grad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
