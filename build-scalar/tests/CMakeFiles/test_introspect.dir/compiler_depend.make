# Empty compiler generated dependencies file for test_introspect.
# This may be replaced when dependencies are built.
