file(REMOVE_RECURSE
  "CMakeFiles/test_introspect.dir/test_introspect.cpp.o"
  "CMakeFiles/test_introspect.dir/test_introspect.cpp.o.d"
  "test_introspect"
  "test_introspect.pdb"
  "test_introspect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_introspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
