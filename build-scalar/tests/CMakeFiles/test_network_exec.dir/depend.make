# Empty dependencies file for test_network_exec.
# This may be replaced when dependencies are built.
