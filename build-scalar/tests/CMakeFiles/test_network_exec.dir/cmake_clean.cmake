file(REMOVE_RECURSE
  "CMakeFiles/test_network_exec.dir/test_network_exec.cpp.o"
  "CMakeFiles/test_network_exec.dir/test_network_exec.cpp.o.d"
  "test_network_exec"
  "test_network_exec.pdb"
  "test_network_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
