file(REMOVE_RECURSE
  "CMakeFiles/test_bit_slicing.dir/test_bit_slicing.cpp.o"
  "CMakeFiles/test_bit_slicing.dir/test_bit_slicing.cpp.o.d"
  "test_bit_slicing"
  "test_bit_slicing.pdb"
  "test_bit_slicing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
