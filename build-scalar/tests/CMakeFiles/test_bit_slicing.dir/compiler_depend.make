# Empty compiler generated dependencies file for test_bit_slicing.
# This may be replaced when dependencies are built.
