file(REMOVE_RECURSE
  "CMakeFiles/test_rc_stage.dir/test_rc_stage.cpp.o"
  "CMakeFiles/test_rc_stage.dir/test_rc_stage.cpp.o.d"
  "test_rc_stage"
  "test_rc_stage.pdb"
  "test_rc_stage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
