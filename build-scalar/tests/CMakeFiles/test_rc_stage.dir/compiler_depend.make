# Empty compiler generated dependencies file for test_rc_stage.
# This may be replaced when dependencies are built.
