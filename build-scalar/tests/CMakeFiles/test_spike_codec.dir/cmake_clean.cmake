file(REMOVE_RECURSE
  "CMakeFiles/test_spike_codec.dir/test_spike_codec.cpp.o"
  "CMakeFiles/test_spike_codec.dir/test_spike_codec.cpp.o.d"
  "test_spike_codec"
  "test_spike_codec.pdb"
  "test_spike_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spike_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
