# Empty dependencies file for test_spike_codec.
# This may be replaced when dependencies are built.
