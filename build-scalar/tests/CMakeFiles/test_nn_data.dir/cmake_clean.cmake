file(REMOVE_RECURSE
  "CMakeFiles/test_nn_data.dir/test_nn_data.cpp.o"
  "CMakeFiles/test_nn_data.dir/test_nn_data.cpp.o.d"
  "test_nn_data"
  "test_nn_data.pdb"
  "test_nn_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
