# Empty dependencies file for test_nn_data.
# This may be replaced when dependencies are built.
