# Empty compiler generated dependencies file for test_design_models.
# This may be replaced when dependencies are built.
