file(REMOVE_RECURSE
  "CMakeFiles/test_design_models.dir/test_design_models.cpp.o"
  "CMakeFiles/test_design_models.dir/test_design_models.cpp.o.d"
  "test_design_models"
  "test_design_models.pdb"
  "test_design_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
