#!/usr/bin/env python3
"""Validate serving-trace exports (NDJSON event journal + Chrome trace).

The serving layer journals every request-lifecycle edge and exports it
two ways (see include/resipe/serve/trace.hpp):

* ``--events FILE``: line-delimited JSON — a schema header line
  (``resipe.serve.trace/1``), one event object per line, and a summary
  trailer carrying the run's ServingStats buckets.
* ``--trace FILE``: Chrome trace-event JSON for chrome://tracing.

This tool re-verifies the span-conservation contract *offline*, from
the files alone — the same checks ``audit_trace`` runs in-process, so a
broken exporter (as opposed to a broken scheduler) cannot slip through:

1. schema line first, summary trailer last, every line valid JSON;
2. ``events`` / ``dropped`` header counts match the actual line count
   and the trailer;
3. every request id has exactly one terminal event (``complete`` or
   ``shed``), no events after its terminal, attempts numbered 1..n;
4. journal counts reconcile exactly with the summary buckets
   (served_ok/degraded, shed per reason, late completions, batches,
   and the attempts identity for retries);
5. for the Chrome file: valid JSON, every flow arrow balanced
   (one 's' and one 'f' per flow id), metadata 'M' thread names
   present for every (pid, tid) lane the serve events reference.

Exit status 0 = clean, 1 = violations (each printed on stderr),
2 = bad invocation.

    python3 tools/trace_check.py --events serve_events.ndjson \
        --trace serve_trace.json
"""

import argparse
import json
import sys

SCHEMA = "resipe.serve.trace/1"
TERMINALS = ("complete", "shed")


def load_ndjson(path, problems):
    """Parses the NDJSON export into (header, events, summary)."""
    header, events, summary = None, [], None
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"{path}:{lineno}: not JSON: {exc}")
                continue
            if lineno == 1:
                header = doc
                if doc.get("schema") != SCHEMA:
                    problems.append(
                        f"{path}:1: schema {doc.get('schema')!r}, "
                        f"want {SCHEMA!r}")
            elif "summary" in doc:
                if summary is not None:
                    problems.append(
                        f"{path}:{lineno}: duplicate summary trailer")
                summary = doc["summary"]
            else:
                if summary is not None:
                    problems.append(
                        f"{path}:{lineno}: event after the summary trailer")
                events.append(doc)
    if header is None:
        problems.append(f"{path}: empty file (no schema header)")
    if summary is None:
        problems.append(f"{path}: missing summary trailer")
    return header, events, summary


def check_counts(path, header, events, summary, problems):
    if header is None or summary is None:
        return
    if header.get("events") != len(events):
        problems.append(
            f"{path}: header says {header.get('events')} events, "
            f"file holds {len(events)}")
    if header.get("dropped") != summary.get("dropped"):
        problems.append(
            f"{path}: header dropped {header.get('dropped')} != "
            f"summary dropped {summary.get('dropped')}")
    if summary.get("dropped", 0) > 0:
        problems.append(
            f"{path}: journal dropped {summary['dropped']} event(s); "
            "conservation cannot be proven on a lossy journal")


def check_conservation(path, events, summary, problems):
    """Per-request chains + exact reconciliation with the summary."""
    if summary is None or summary.get("dropped", 0) > 0:
        return
    by_request = {}
    batch_forms = 0
    for ev in events:
        if ev.get("kind") == "batch_form":
            batch_forms += 1
        if "request" in ev:
            by_request.setdefault(ev["request"], []).append(ev)

    counts = {
        "served_ok": 0, "served_degraded": 0, "shed_queue_full": 0,
        "shed_deadline": 0, "shed_quarantine": 0, "late_completions": 0,
    }
    attempts_total = 0
    for rid, chain in sorted(by_request.items()):
        terminals = [e for e in chain if e["kind"] in TERMINALS]
        if len(terminals) != 1:
            problems.append(
                f"{path}: request {rid}: {len(terminals)} terminal "
                "event(s), want exactly 1")
            continue
        if chain[-1]["kind"] not in TERMINALS:
            problems.append(
                f"{path}: request {rid}: events after its terminal "
                f"({chain[-1]['kind']})")
        attempts = [e for e in chain if e["kind"] == "attempt_done"]
        for i, ev in enumerate(attempts, 1):
            if ev.get("attempt") != i:
                problems.append(
                    f"{path}: request {rid}: attempt_done numbered "
                    f"{ev.get('attempt')}, expected {i}")
        attempts_total += len(attempts)
        tenants = {e.get("tenant") for e in chain}
        if len(tenants) != 1:
            problems.append(
                f"{path}: request {rid}: inconsistent tenants {tenants}")
        term = terminals[0]
        if term["kind"] == "complete":
            key = ("served_degraded" if term.get("status") == "degraded"
                   else "served_ok")
            counts[key] += 1
        else:
            reason = term.get("reason")
            if reason == "queue_full":
                counts["shed_queue_full"] += 1
            elif reason == "all_chips_quarantined":
                counts["shed_quarantine"] += 1
            elif term.get("attempt", 0) > 0:
                counts["late_completions"] += 1
            else:
                counts["shed_deadline"] += 1

    recon = dict(counts)
    recon["submitted"] = len(by_request)
    recon["batches"] = batch_forms
    served = counts["served_ok"] + counts["served_degraded"]
    recon["retries"] = attempts_total - served - counts["late_completions"]
    for key, got in recon.items():
        want = summary.get(key)
        if got != want:
            problems.append(
                f"{path}: {key}: journal says {got}, summary says {want}")


def check_chrome(path, problems):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        problems.append(f"{path}: unreadable Chrome trace: {exc}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append(f"{path}: no traceEvents array")
        return

    named = {(e.get("pid"), e.get("tid"))
             for e in events
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    flows = {}
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        lane = (e.get("pid"), e.get("tid"))
        if lane not in named:
            problems.append(
                f"{path}: lane pid={lane[0]} tid={lane[1]} used by "
                f"{e.get('name')!r} has no thread_name metadata")
            named.add(lane)  # report each lane once
        if ph in ("s", "t", "f"):
            flows.setdefault(e.get("id"), []).append(ph)
    for fid, phases in sorted(flows.items()):
        if phases.count("s") != 1 or phases.count("f") != 1:
            problems.append(
                f"{path}: flow {fid}: {phases.count('s')} start(s) / "
                f"{phases.count('f')} end(s), want exactly 1 each")
        if phases[0] != "s" or phases[-1] != "f":
            problems.append(
                f"{path}: flow {fid}: phases out of order: {phases}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="validate serving-trace exports")
    parser.add_argument("--events", help="NDJSON event journal export")
    parser.add_argument("--trace", help="Chrome trace JSON export")
    args = parser.parse_args(argv)
    if not args.events and not args.trace:
        parser.error("nothing to check: pass --events and/or --trace")

    problems = []
    if args.events:
        header, events, summary = load_ndjson(args.events, problems)
        check_counts(args.events, header, events, summary, problems)
        check_conservation(args.events, events, summary, problems)
        if not problems:
            print(f"{args.events}: OK ({len(events)} events, "
                  f"{len({e['request'] for e in events if 'request' in e})} "
                  "requests, conservation verified)")
    if args.trace:
        before = len(problems)
        check_chrome(args.trace, problems)
        if len(problems) == before:
            print(f"{args.trace}: OK (flows balanced, lanes named)")

    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
