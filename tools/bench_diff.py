#!/usr/bin/env python3
"""Noise-aware bench regression gate over the append-only history store.

Compares a candidate ``benchmarks.json`` (from tools/collect_bench.py)
against the last N matching entries in a ``--history`` directory
(written by ``collect_bench.py --history``):

    python3 tools/bench_diff.py benchmarks.json --history bench/history

For every (bench, figure) pair with a known better-direction the tool
computes the history mean and standard deviation and flags a regression
when the candidate is worse than the mean by more than

    max(threshold * |mean|, noise_mult * std)

so noisy metrics need a larger excursion than quiet ones before they
fail the gate.  Directions come from the figure-naming convention:
time/latency/energy/area/misses suffixes are lower-is-better;
throughput/ops/gflops/gbs/accuracy are higher-is-better; anything else
(identities like arithmetic intensity, hashes, counts) is reported but
never gated.

History entries are matched on machine fingerprint hash (use
``--ignore-machine`` on shared/heterogeneous CI runners), per-bench
``config_hash`` and per-bench ``simd_isa`` (the vector ISA stamp from
bench_report.hpp), so a config change or an ISA change starts a fresh
baseline instead of producing bogus diffs.  Entries recorded under a
different (or unknown) ISA are never compared — a scalar-build run
cannot regress against an AVX-512 baseline or vice versa; such skips
are reported so a silently empty comparison is visible.

``--self-test`` builds a seeded synthetic history, asserts an injected
20% slowdown is flagged and that re-running the unperturbed candidate
passes, then exits.
"""

import argparse
import copy
import json
import math
import os
import random
import sys
import tempfile

from collect_bench import fnv1a_hex, machine_fingerprint

LOWER_BETTER_SUFFIXES = (
    "_s", "_ns", "_us", "_ms", "_seconds", "time", "latency",
    "_area_m2", "area", "energy", "_j", "misses", "miss_rate",
)
HIGHER_BETTER_SUFFIXES = (
    "ops", "throughput", "gflops", "gbs", "accuracy", "bandwidth",
    "yield",
)


def direction(key):
    """+1 higher-is-better, -1 lower-is-better, 0 not gated."""
    key = key.lower()
    # Lower-better wins ties like 'wall_time_s' (time before the _s
    # suffix is redundant, but both point the same way).
    for suffix in LOWER_BETTER_SUFFIXES:
        if key.endswith(suffix):
            return -1
    for suffix in HIGHER_BETTER_SUFFIXES:
        if key.endswith(suffix):
            return +1
    return 0


def load_history(history_dir, machine_hash, ignore_machine, last_n):
    """Newest-first matching history entries."""
    try:
        names = sorted(os.listdir(history_dir), reverse=True)
    except OSError as err:
        print(f"bench_diff: cannot read history: {err}", file=sys.stderr)
        return []
    entries = []
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(history_dir, name)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: skipping unreadable entry {path}: {err}",
                  file=sys.stderr)
            continue
        if not ignore_machine and entry.get("machine_hash") != machine_hash:
            continue
        entries.append(entry)
        if len(entries) >= last_n:
            break
    return entries


def figures_of(bench_doc):
    """All numeric metrics of one bench report, flattened."""
    out = {}
    wall = bench_doc.get("wall_time_s")
    if isinstance(wall, (int, float)):
        out["wall_time_s"] = float(wall)
    for key, value in bench_doc.get("figures", {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = float(value)
    return out


def diff(candidate, history, threshold, noise_mult, match_config=True):
    """Returns (regressions, improvements, checked) lists of strings."""
    regressions, improvements, checked = [], [], []
    by_name = {}
    for entry in history:
        for bench in entry.get("benches", []):
            by_name.setdefault(bench.get("bench"), []).append(bench)

    for bench in candidate.get("benches", []):
        name = bench.get("bench")
        config = bench.get("config_hash")
        isa = bench.get("simd_isa")
        pool = [
            b for b in by_name.get(name, [])
            if not match_config or b.get("config_hash") in (None, config)
        ]
        # Refuse to compare across vector ISAs: a scalar-build candidate
        # vs an AVX-512 baseline (or the reverse) measures the compiler
        # flags, not a regression.  Unknown (pre-stamp) history counts
        # as a different ISA.
        prior = [b for b in pool if b.get("simd_isa") == isa]
        skipped_isa = len(pool) - len(prior)
        if skipped_isa:
            checked.append(
                f"{name}: skipped {skipped_isa} history entr"
                f"{'y' if skipped_isa == 1 else 'ies'} with different or "
                f"unknown simd_isa (candidate: {isa})")
        if not prior:
            checked.append(f"{name}: no matching history (new baseline)")
            continue
        cand_figures = figures_of(bench)
        for key, value in sorted(cand_figures.items()):
            sign = direction(key)
            if sign == 0:
                continue
            values = [
                f[key] for f in (figures_of(b) for b in prior) if key in f
            ]
            if not values:
                continue
            mean = sum(values) / len(values)
            var = sum((v - mean) ** 2 for v in values) / len(values)
            std = math.sqrt(var)
            margin = max(threshold * abs(mean), noise_mult * std)
            # Positive delta = worse, regardless of direction.
            worse_by = (mean - value) if sign > 0 else (value - mean)
            label = (f"{name}.{key}: {value:.6g} vs mean {mean:.6g} "
                     f"(n={len(values)}, std {std:.3g}, "
                     f"margin {margin:.3g})")
            if worse_by > margin:
                regressions.append(label)
            elif -worse_by > margin:
                improvements.append(label)
            else:
                checked.append(label)
    return regressions, improvements, checked


def run_diff(args):
    try:
        with open(args.candidate, encoding="utf-8") as fh:
            candidate = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read candidate: {err}", file=sys.stderr)
        return 2
    machine_hash = fnv1a_hex(machine_fingerprint())
    history = load_history(args.history, machine_hash,
                           args.ignore_machine, args.last)
    if not history:
        print("bench_diff: no usable history entries — nothing to gate "
              "(treating as pass; seed the store with "
              "collect_bench.py --history)")
        return 0
    regressions, improvements, checked = diff(
        candidate, history, args.threshold, args.noise_mult)
    for line in checked:
        if args.verbose:
            print(f"  ok      {line}")
    for line in improvements:
        print(f"  faster  {line}")
    for line in regressions:
        print(f"  SLOWER  {line}")
    print(f"bench_diff: {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s), "
          f"{len(checked)} unchanged/uncompared vs last "
          f"{len(history)} entr{'y' if len(history) == 1 else 'ies'}")
    if regressions and args.warn_only:
        print("bench_diff: --warn-only set, not failing the gate")
        return 0
    return 1 if regressions else 0


def self_test():
    """Seeded end-to-end check of the detector itself: an injected 20%
    slowdown must be flagged, an unperturbed re-run must pass."""
    rng = random.Random(0x5EED)

    def entry(stamp):
        return {
            "timestamp": stamp,
            "machine_hash": "feedfacefeedface",
            "benches": [{
                "bench": "roofline",
                "config_hash": "cafecafecafecafe",
                "simd_isa": "avx2",
                "wall_time_s": 10.0 * (1.0 + rng.uniform(-0.02, 0.02)),
                "figures": {
                    "fast_mvm_gflops":
                        2.0 * (1.0 + rng.uniform(-0.02, 0.02)),
                    "fast_mvm_intensity": 0.13,  # directionless: ignored
                },
            }],
        }

    history = [entry(1000 + i) for i in range(5)]
    clean = copy.deepcopy(history[0])
    slow = copy.deepcopy(clean)
    slow["benches"][0]["wall_time_s"] *= 1.20
    slow["benches"][0]["figures"]["fast_mvm_gflops"] /= 1.20

    with tempfile.TemporaryDirectory() as tmp:
        for i, e in enumerate(history):
            with open(os.path.join(tmp, f"{e['timestamp']}_x_{i}.json"),
                      "w", encoding="utf-8") as fh:
                json.dump(e, fh)

        regressions, _, _ = diff(slow, history, 0.10, 3.0)
        assert any("wall_time_s" in r for r in regressions), \
            "20% wall-time slowdown not flagged"
        assert any("fast_mvm_gflops" in r for r in regressions), \
            "20% rate drop not flagged"
        assert not any("intensity" in r for r in regressions), \
            "directionless metric wrongly gated"

        regressions, _, checked = diff(clean, history, 0.10, 3.0)
        assert not regressions, \
            f"clean re-run flagged as regression: {regressions}"
        assert checked, "clean re-run compared nothing"

        # The same 20% slowdown recorded under a different vector ISA
        # must not gate — those baselines are not comparable — and the
        # skip must be reported rather than silent.
        cross_isa = copy.deepcopy(slow)
        cross_isa["benches"][0]["simd_isa"] = "avx512"
        regressions, _, checked = diff(cross_isa, history, 0.10, 3.0)
        assert not regressions, \
            f"cross-ISA candidate wrongly gated: {regressions}"
        assert any("simd_isa" in line for line in checked), \
            "cross-ISA skip not reported"
    print("bench_diff: self-test passed "
          "(injected 20% slowdown flagged, clean run passes, "
          "cross-ISA history skipped)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="noise-aware bench regression gate")
    parser.add_argument("candidate", nargs="?", default="benchmarks.json",
                        help="candidate benchmarks.json "
                             "(default: benchmarks.json)")
    parser.add_argument("--history", default="bench/history",
                        help="history directory "
                             "(default: bench/history)")
    parser.add_argument("--last", type=int, default=5,
                        help="compare against the last N matching "
                             "entries (default: 5)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression threshold "
                             "(default: 0.10)")
    parser.add_argument("--noise-mult", type=float, default=3.0,
                        help="std-deviation multiplier of the noise "
                             "margin (default: 3.0)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (shared "
                             "runners)")
    parser.add_argument("--ignore-machine", action="store_true",
                        help="compare across machine fingerprints "
                             "(CI runners vs committed baselines)")
    parser.add_argument("--verbose", action="store_true",
                        help="also print unchanged metrics")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded detector self-test and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    return run_diff(args)


if __name__ == "__main__":
    sys.exit(main())
