#!/usr/bin/env python3
"""Unit tests for collect_bench.py and bench_diff.py (run in CI).

    python3 tools/test_tools.py -v
"""

import copy
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff
import check_coverage
import collect_bench
import trace_check


def report_line(name, figures=None, **extra):
    doc = {"bench": name, "wall_time_s": 1.0, "figures": figures or {}}
    doc.update(extra)
    return "BENCH_JSON " + json.dumps(doc)


class CollectBenchTest(unittest.TestCase):
    def test_parses_prefixed_lines(self):
        problems = []
        docs = list(collect_bench.reports_in(
            ["noise", report_line("a"), "more noise"], "log", problems))
        self.assertEqual([d["bench"] for d in docs], ["a"])
        self.assertEqual(problems, [])

    def test_malformed_lines_reported_not_dropped(self):
        problems = []
        lines = [
            "BENCH_JSON {broken json",
            'BENCH_JSON {"no_bench_key": 1}',
            report_line("good"),
        ]
        docs = list(collect_bench.reports_in(lines, "src.log", problems))
        self.assertEqual([d["bench"] for d in docs], ["good"])
        self.assertEqual(len(problems), 2)
        self.assertIn("src.log:1", problems[0])
        self.assertIn("unparseable", problems[0])
        self.assertIn("src.log:2", problems[1])
        self.assertIn("'bench' key", problems[1])

    def test_last_occurrence_wins(self):
        with tempfile.TemporaryDirectory() as tmp:
            log = os.path.join(tmp, "bench.log")
            out = os.path.join(tmp, "benchmarks.json")
            with open(log, "w", encoding="utf-8") as fh:
                fh.write(report_line("a", {"x": 1.0}) + "\n")
                fh.write(report_line("a", {"x": 2.0}) + "\n")
            rc = collect_bench.main([log, "-o", out])
            self.assertEqual(rc, 0)
            with open(out, encoding="utf-8") as fh:
                doc = json.load(fh)
            self.assertEqual(len(doc["benches"]), 1)
            self.assertEqual(doc["benches"][0]["figures"]["x"], 2.0)

    def test_strict_fails_on_malformed(self):
        with tempfile.TemporaryDirectory() as tmp:
            log = os.path.join(tmp, "bench.log")
            out = os.path.join(tmp, "benchmarks.json")
            with open(log, "w", encoding="utf-8") as fh:
                fh.write("BENCH_JSON {broken\n")
                fh.write(report_line("a") + "\n")
            stderr = io.StringIO()
            old = sys.stderr
            sys.stderr = stderr
            try:
                rc = collect_bench.main([log, "-o", out, "--strict"])
            finally:
                sys.stderr = old
            self.assertEqual(rc, 1)
            self.assertIn("malformed", stderr.getvalue())

    def test_history_entry_keys(self):
        with tempfile.TemporaryDirectory() as tmp:
            log = os.path.join(tmp, "bench.log")
            out = os.path.join(tmp, "benchmarks.json")
            hist = os.path.join(tmp, "history")
            with open(log, "w", encoding="utf-8") as fh:
                fh.write(report_line("a", {"x": 1.0},
                                     git_sha="abc123def456789") + "\n")
            rc = collect_bench.main([log, "-o", out, "--history", hist])
            self.assertEqual(rc, 0)
            entries = os.listdir(hist)
            self.assertEqual(len(entries), 1)
            # <unixtime>_<gitsha12>_<machinehash12>.json
            stem = entries[0][:-len(".json")]
            stamp, sha, machine = stem.split("_")
            self.assertTrue(stamp.isdigit())
            self.assertEqual(sha, "abc123def456")
            self.assertEqual(len(machine), 12)
            with open(os.path.join(hist, entries[0]),
                      encoding="utf-8") as fh:
                entry = json.load(fh)
            self.assertEqual(entry["git_sha"], "abc123def456789")
            self.assertEqual(
                entry["machine_hash"],
                collect_bench.fnv1a_hex(collect_bench.machine_fingerprint()))
            self.assertEqual(len(entry["benches"]), 1)

    def test_fnv1a_matches_cpp_constants(self):
        # Empty string hashes to the FNV offset basis; a known vector
        # pins the prime ("a" -> 0xaf63dc4c8601ec8c).
        self.assertEqual(collect_bench.fnv1a_hex(""), "cbf29ce484222325")
        self.assertEqual(collect_bench.fnv1a_hex("a"), "af63dc4c8601ec8c")


class BenchDiffTest(unittest.TestCase):
    def history(self, n=5, wall=10.0, gflops=2.0):
        rng = __import__("random").Random(99)
        out = []
        for i in range(n):
            out.append({
                "timestamp": 1000 + i,
                "machine_hash": "m",
                "benches": [{
                    "bench": "b",
                    "config_hash": "c",
                    "wall_time_s": wall * (1 + rng.uniform(-0.01, 0.01)),
                    "figures": {
                        "k_gflops": gflops * (1 + rng.uniform(-0.01, 0.01)),
                        "k_intensity": 0.5,
                    },
                }],
            })
        return out

    def test_direction_convention(self):
        self.assertEqual(bench_diff.direction("wall_time_s"), -1)
        self.assertEqual(bench_diff.direction("mvm_latency"), -1)
        self.assertEqual(bench_diff.direction("cache_misses"), -1)
        self.assertEqual(bench_diff.direction("engine_throughput_ops"), +1)
        self.assertEqual(bench_diff.direction("kernel_gflops"), +1)
        self.assertEqual(bench_diff.direction("test_accuracy"), +1)
        self.assertEqual(bench_diff.direction("k_intensity"), 0)
        self.assertEqual(bench_diff.direction("ridge_flop_per_byte"), 0)

    def test_slowdown_flagged_clean_passes(self):
        history = self.history()
        clean = copy.deepcopy(history[0])
        regressions, _, checked = bench_diff.diff(clean, history, 0.10, 3.0)
        self.assertEqual(regressions, [])
        self.assertTrue(checked)

        slow = copy.deepcopy(clean)
        slow["benches"][0]["wall_time_s"] *= 1.20
        regressions, _, _ = bench_diff.diff(slow, history, 0.10, 3.0)
        self.assertTrue(any("wall_time_s" in r for r in regressions))

    def test_rate_drop_flagged_and_gain_is_improvement(self):
        history = self.history()
        drop = copy.deepcopy(history[0])
        drop["benches"][0]["figures"]["k_gflops"] *= 0.8
        regressions, _, _ = bench_diff.diff(drop, history, 0.10, 3.0)
        self.assertTrue(any("k_gflops" in r for r in regressions))

        gain = copy.deepcopy(history[0])
        gain["benches"][0]["figures"]["k_gflops"] *= 1.5
        regressions, improvements, _ = bench_diff.diff(
            gain, history, 0.10, 3.0)
        self.assertEqual(regressions, [])
        self.assertTrue(any("k_gflops" in s for s in improvements))

    def test_noise_margin_widens_with_std(self):
        # History with 30% spread: a 20% excursion stays inside the
        # 3-sigma noise margin and must not be flagged.
        values = [10.0, 13.0, 7.0, 12.0, 8.0]
        history = []
        for i, v in enumerate(values):
            history.append({
                "timestamp": i,
                "machine_hash": "m",
                "benches": [{"bench": "b", "config_hash": "c",
                             "wall_time_s": v, "figures": {}}],
            })
        noisy = copy.deepcopy(history[0])
        noisy["benches"][0]["wall_time_s"] = 12.0
        regressions, _, _ = bench_diff.diff(noisy, history, 0.10, 3.0)
        self.assertEqual(regressions, [])

    def test_config_change_starts_fresh_baseline(self):
        history = self.history()
        other = copy.deepcopy(history[0])
        other["benches"][0]["config_hash"] = "different"
        other["benches"][0]["wall_time_s"] *= 5.0
        regressions, _, checked = bench_diff.diff(other, history, 0.10, 3.0)
        self.assertEqual(regressions, [])
        self.assertTrue(any("no matching history" in s for s in checked))

    def test_isa_change_refuses_comparison(self):
        # A candidate stamped with a different vector ISA must not be
        # gated against the old baselines (the numbers measure the
        # build, not a regression), and the skip must be reported.
        history = self.history()
        vectorized = copy.deepcopy(history[0])
        vectorized["benches"][0]["simd_isa"] = "avx512"
        vectorized["benches"][0]["wall_time_s"] *= 5.0
        regressions, _, checked = bench_diff.diff(
            vectorized, history, 0.10, 3.0)
        self.assertEqual(regressions, [])
        self.assertTrue(any("simd_isa" in s for s in checked))
        self.assertTrue(any("no matching history" in s for s in checked))

    def test_same_isa_still_compares(self):
        history = self.history()
        for entry in history:
            entry["benches"][0]["simd_isa"] = "avx2"
        slow = copy.deepcopy(history[0])
        slow["benches"][0]["wall_time_s"] *= 1.20
        regressions, _, _ = bench_diff.diff(slow, history, 0.10, 3.0)
        self.assertTrue(any("wall_time_s" in r for r in regressions))

    def test_self_test_entrypoint(self):
        self.assertEqual(bench_diff.self_test(), 0)


class TraceCheckTest(unittest.TestCase):
    """trace_check.py against hand-built NDJSON / Chrome documents."""

    @staticmethod
    def events_doc(events, summary):
        lines = [json.dumps({"schema": trace_check.SCHEMA,
                             "events": len(events),
                             "dropped": summary.get("dropped", 0)})]
        lines += [json.dumps(e) for e in events]
        lines.append(json.dumps({"summary": summary}))
        return "\n".join(lines) + "\n"

    @staticmethod
    def summary(**overrides):
        doc = {"submitted": 0, "served_ok": 0, "served_degraded": 0,
               "shed_queue_full": 0, "shed_deadline": 0,
               "shed_quarantine": 0, "late_completions": 0, "retries": 0,
               "batches": 0, "dropped": 0}
        doc.update(overrides)
        return doc

    @staticmethod
    def clean_chain(rid, tenant=0):
        return [
            {"t": 0.0, "kind": "admit", "request": rid, "tenant": tenant,
             "attempt": 0, "queue_depth": 1},
            {"t": 0.1, "kind": "dispatch", "request": rid,
             "tenant": tenant, "batch": rid, "chip": 0, "attempt": 0},
            {"t": 0.2, "kind": "attempt_done", "request": rid,
             "tenant": tenant, "batch": rid, "chip": 0, "attempt": 1},
            {"t": 0.2, "kind": "complete", "request": rid,
             "tenant": tenant, "chip": 0, "attempt": 1, "status": "ok"},
        ]

    def run_on(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".ndjson", delete=False) as fh:
            fh.write(text)
            path = fh.name
        try:
            problems = []
            header, events, summary = trace_check.load_ndjson(
                path, problems)
            trace_check.check_counts(path, header, events, summary,
                                     problems)
            trace_check.check_conservation(path, events, summary,
                                           problems)
            return problems
        finally:
            os.unlink(path)

    def test_clean_trace_passes(self):
        events = (self.clean_chain(0) + self.clean_chain(1, tenant=1)
                  + [{"t": 0.05, "kind": "batch_form", "batch": 0,
                      "chip": 0, "attempt": 0, "fill": "full", "size": 1},
                     {"t": 0.05, "kind": "batch_form", "batch": 1,
                      "chip": 0, "attempt": 0, "fill": "full", "size": 1}])
        text = self.events_doc(events, self.summary(
            submitted=2, served_ok=2, batches=2))
        self.assertEqual(self.run_on(text), [])

    def test_missing_terminal_reported(self):
        events = self.clean_chain(0)[:-1]  # drop the complete
        text = self.events_doc(events, self.summary(submitted=1))
        problems = self.run_on(text)
        self.assertTrue(any("terminal" in p for p in problems))

    def test_double_terminal_reported(self):
        events = self.clean_chain(0) + [self.clean_chain(0)[-1]]
        text = self.events_doc(events, self.summary(
            submitted=1, served_ok=1))
        problems = self.run_on(text)
        self.assertTrue(any("terminal" in p for p in problems))

    def test_count_mismatch_reported(self):
        text = self.events_doc(self.clean_chain(0), self.summary(
            submitted=1, served_ok=0, shed_deadline=1))
        problems = self.run_on(text)
        self.assertTrue(any("served_ok" in p for p in problems))

    def test_dropped_events_fail_loudly(self):
        text = self.events_doc(self.clean_chain(0), self.summary(
            submitted=1, served_ok=1, dropped=3))
        problems = self.run_on(text)
        self.assertTrue(any("dropped" in p for p in problems))

    def test_late_completion_bucketing(self):
        # A deadline shed with attempts consumed is a late completion,
        # not a fresh deadline shed — mirror of summarize().
        events = self.clean_chain(0)
        events[-1] = {"t": 0.2, "kind": "shed", "request": 0,
                      "tenant": 0, "attempt": 1,
                      "reason": "deadline_expired"}
        text = self.events_doc(events, self.summary(
            submitted=1, late_completions=1))
        self.assertEqual(self.run_on(text), [])

    def test_chrome_flow_balance(self):
        doc = {"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 2, "tid": 1,
             "args": {"name": "serve: scheduler queue"}},
            {"name": "serve.request", "ph": "s", "id": 7, "ts": 0.0,
             "pid": 2, "tid": 1},
        ]}
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as fh:
            json.dump(doc, fh)
            path = fh.name
        try:
            problems = []
            trace_check.check_chrome(path, problems)
            self.assertTrue(any("flow 7" in p for p in problems))
            doc["traceEvents"].append(
                {"name": "serve.request", "ph": "f", "id": 7, "ts": 1.0,
                 "pid": 2, "tid": 1, "bp": "e"})
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            problems = []
            trace_check.check_chrome(path, problems)
            self.assertEqual(problems, [])
        finally:
            os.unlink(path)

    def test_unnamed_lane_reported(self):
        doc = {"traceEvents": [
            {"name": "serve.shed", "ph": "i", "ts": 0.0, "pid": 2,
             "tid": 9}]}
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as fh:
            json.dump(doc, fh)
            path = fh.name
        try:
            problems = []
            trace_check.check_chrome(path, problems)
            self.assertTrue(any("thread_name" in p for p in problems))
        finally:
            os.unlink(path)

    def test_main_exit_codes(self):
        events = self.clean_chain(0)
        text = self.events_doc(events, self.summary(
            submitted=1, served_ok=1))
        with tempfile.NamedTemporaryFile(
                "w", suffix=".ndjson", delete=False) as fh:
            fh.write(text)
            path = fh.name
        try:
            self.assertEqual(trace_check.main(["--events", path]), 0)
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(
                    {"t": 9.9, "kind": "admit", "request": 0,
                     "tenant": 0, "attempt": 0}) + "\n")
            self.assertEqual(trace_check.main(["--events", path]), 1)
        finally:
            os.unlink(path)


class CheckCoverageTest(unittest.TestCase):
    INFO = "\n".join([
        "TN:",
        "SF:/repo/src/resipe/events/event_queue.cpp",
        "DA:10,5",
        "DA:11,0",
        "DA:12,3",
        "DA:13,1",
        "end_of_record",
        "SF:/repo/src/resipe/events/executor.cpp",
        "DA:20,2",
        "DA:21,2",
        "end_of_record",
        "SF:/repo/src/resipe/network.cpp",
        "DA:5,0",
        "DA:6,0",
        "end_of_record",
        "",
    ])

    def info_file(self, text=None):
        fh = tempfile.NamedTemporaryFile("w", suffix=".info", delete=False)
        fh.write(self.INFO if text is None else text)
        fh.close()
        self.addCleanup(os.unlink, fh.name)
        return fh.name

    def test_parse_lcov_records(self):
        records = list(check_coverage.parse_lcov(self.INFO.splitlines()))
        self.assertEqual(len(records), 3)
        path, hits = records[0]
        self.assertEqual(path, "/repo/src/resipe/events/event_queue.cpp")
        self.assertEqual(hits, {10: 5, 11: 0, 12: 3, 13: 1})

    def test_duplicate_da_lines_summed(self):
        text = ("SF:a.cpp\nDA:1,0\nDA:1,2\nend_of_record\n")
        records = list(check_coverage.parse_lcov(text.splitlines()))
        self.assertEqual(records, [("a.cpp", {1: 2})])

    def test_selection_aggregates_only_matching_files(self):
        records = list(check_coverage.parse_lcov(self.INFO.splitlines()))
        covered, instrumented, per_file = check_coverage.coverage_of(
            records, "src/resipe/events/")
        self.assertEqual((covered, instrumented), (5, 6))
        self.assertEqual(len(per_file), 2)

    def test_floor_pass_and_fail_exit_codes(self):
        path = self.info_file()
        # events/ selection sits at 5/6 = 83.3%.
        self.assertEqual(check_coverage.main(
            [path, "--path", "src/resipe/events/", "--min-line", "80"]), 0)
        self.assertEqual(check_coverage.main(
            [path, "--path", "src/resipe/events/", "--min-line", "90"]), 1)

    def test_empty_selection_fails(self):
        path = self.info_file()
        self.assertEqual(check_coverage.main(
            [path, "--path", "src/renamed/", "--min-line", "1"]), 1)

    def test_malformed_da_entry_is_an_error(self):
        path = self.info_file("SF:a.cpp\nDA:not_a_line\nend_of_record\n")
        self.assertEqual(check_coverage.main(
            [path, "--path", "a.cpp", "--min-line", "1"]), 2)


if __name__ == "__main__":
    unittest.main()
