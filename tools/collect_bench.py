#!/usr/bin/env python3
"""Collect BENCH_JSON lines into one benchmarks.json document.

Every bench binary prints a single ``BENCH_JSON {...}`` line on stdout
(see bench/bench_report.hpp).  This tool scans bench logs and/or the
``--json FILE`` outputs and folds everything into one document so CI
can upload a single perf artifact per run:

    ./build/bench/bench_inspection | tee inspection.log
    ./build/bench/bench_parallel_scaling --json scaling.json
    python3 tools/collect_bench.py inspection.log scaling.json \
        -o benchmarks.json

Inputs may be bench stdout captures (lines prefixed with BENCH_JSON),
bare report files (one JSON object per line) or ``-`` for stdin.  If
the same bench name appears more than once the last occurrence wins,
so re-runs in the same log are harmless.
"""

import argparse
import json
import sys

PREFIX = "BENCH_JSON "


def reports_in(stream):
    """Yield parsed bench reports found in an iterable of lines."""
    for line in stream:
        line = line.strip()
        if line.startswith(PREFIX):
            line = line[len(PREFIX):]
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict) and "bench" in doc:
            yield doc


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fold BENCH_JSON lines into one benchmarks.json")
    parser.add_argument("inputs", nargs="+",
                        help="bench logs / report files, or - for stdin")
    parser.add_argument("-o", "--output", default="benchmarks.json",
                        help="output document (default: benchmarks.json)")
    args = parser.parse_args(argv)

    by_name = {}
    for path in args.inputs:
        if path == "-":
            found = list(reports_in(sys.stdin))
        else:
            try:
                with open(path, encoding="utf-8") as fh:
                    found = list(reports_in(fh))
            except OSError as err:
                print(f"collect_bench: {err}", file=sys.stderr)
                return 1
        if not found:
            print(f"collect_bench: no BENCH_JSON lines in {path}",
                  file=sys.stderr)
        for doc in found:
            by_name[doc["bench"]] = doc

    if not by_name:
        print("collect_bench: nothing collected", file=sys.stderr)
        return 1

    document = {"benches": sorted(by_name.values(),
                                  key=lambda d: d["bench"])}
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"collect_bench: wrote {len(by_name)} report(s) to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
