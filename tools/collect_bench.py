#!/usr/bin/env python3
"""Collect BENCH_JSON lines into one benchmarks.json document.

Every bench binary prints a single ``BENCH_JSON {...}`` line on stdout
(see bench/bench_report.hpp).  This tool scans bench logs and/or the
``--json FILE`` outputs and folds everything into one document so CI
can upload a single perf artifact per run:

    ./build/bench/bench_inspection | tee inspection.log
    ./build/bench/bench_parallel_scaling --json scaling.json
    python3 tools/collect_bench.py inspection.log scaling.json \
        -o benchmarks.json

Inputs may be bench stdout captures (lines prefixed with BENCH_JSON),
bare report files (one JSON object per line) or ``-`` for stdin.  If
the same bench name appears more than once the last occurrence wins,
so re-runs in the same log are harmless.

Malformed BENCH_JSON lines (unparseable JSON, or JSON without a
``bench`` key) are reported on stderr with their source and line
number — never silently dropped.

With ``--history DIR`` the collected document is also appended to an
append-only history store: one file per run, named
``<unixtime>_<gitsha>_<machinehash>.json`` so entries are keyed by
(git SHA, machine fingerprint) and per-bench ``config_hash`` stamps.
``tools/bench_diff.py`` consumes this store for noise-aware regression
tracking.
"""

import argparse
import json
import os
import sys
import time

PREFIX = "BENCH_JSON "

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def fnv1a_hex(text):
    """FNV-1a 64 hex digest — mirrors resipe::perf's fingerprint hash."""
    h = FNV_OFFSET
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return f"{h:016x}"


def machine_fingerprint():
    """Mirror of resipe::perf::machine_fingerprint():
    ``<cpu model>;cores=<n>;word=8``."""
    model = "unknown"
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.startswith("model name"):
                    _, _, value = line.partition(":")
                    model = value.strip()
                    break
    except OSError:
        pass
    cores = os.cpu_count() or 0
    return f"{model};cores={cores};word=8"


def reports_in(stream, source, problems):
    """Yield parsed bench reports from an iterable of lines.

    Lines carrying the BENCH_JSON prefix (or starting with ``{`` in
    bare report files) that fail to parse, or parse to something that
    is not a bench report, are appended to ``problems`` as
    human-readable strings instead of being dropped.
    """
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        prefixed = line.startswith(PREFIX)
        if prefixed:
            line = line[len(PREFIX):]
        if not prefixed and not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as err:
            # A prefixed line unambiguously claims to be a report; a
            # bare '{...}' line in a log might be other JSON output, but
            # in a report file it is still worth flagging.
            problems.append(f"{source}:{lineno}: unparseable JSON ({err})")
            continue
        if not isinstance(doc, dict) or "bench" not in doc:
            problems.append(
                f"{source}:{lineno}: JSON object without a 'bench' key")
            continue
        yield doc


def write_history_entry(history_dir, document):
    """Append the collected document to the history store; returns the
    entry path."""
    os.makedirs(history_dir, exist_ok=True)
    benches = document["benches"]
    git_sha = next((b.get("git_sha") for b in benches
                    if b.get("git_sha")), "unknown")
    fingerprint = machine_fingerprint()
    machine_hash = fnv1a_hex(fingerprint)
    stamp = int(time.time())
    name = f"{stamp}_{git_sha[:12]}_{machine_hash[:12]}.json"
    entry = {
        "timestamp": stamp,
        "git_sha": git_sha,
        "machine": fingerprint,
        "machine_hash": machine_hash,
        "benches": benches,
    }
    path = os.path.join(history_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fold BENCH_JSON lines into one benchmarks.json")
    parser.add_argument("inputs", nargs="+",
                        help="bench logs / report files, or - for stdin")
    parser.add_argument("-o", "--output", default="benchmarks.json",
                        help="output document (default: benchmarks.json)")
    parser.add_argument("--history", metavar="DIR", default="",
                        help="also append an entry to this append-only "
                             "bench-history directory")
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit 1) when malformed BENCH_JSON "
                             "lines are found")
    args = parser.parse_args(argv)

    by_name = {}
    problems = []
    for path in args.inputs:
        if path == "-":
            found = list(reports_in(sys.stdin, "<stdin>", problems))
        else:
            try:
                with open(path, encoding="utf-8") as fh:
                    found = list(reports_in(fh, path, problems))
            except OSError as err:
                print(f"collect_bench: {err}", file=sys.stderr)
                return 1
        if not found:
            print(f"collect_bench: no BENCH_JSON lines in {path}",
                  file=sys.stderr)
        for doc in found:
            by_name[doc["bench"]] = doc

    for problem in problems:
        print(f"collect_bench: malformed report: {problem}",
              file=sys.stderr)

    if not by_name:
        print("collect_bench: nothing collected", file=sys.stderr)
        return 1

    document = {"benches": sorted(by_name.values(),
                                  key=lambda d: d["bench"])}
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"collect_bench: wrote {len(by_name)} report(s) to {args.output}")
    if args.history:
        entry = write_history_entry(args.history, document)
        print(f"collect_bench: appended history entry {entry}")
    if problems and args.strict:
        print(f"collect_bench: {len(problems)} malformed line(s) "
              "(--strict)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
