#!/usr/bin/env python3
"""Enforce a line-coverage floor on part of the tree from an lcov info file.

    python3 tools/check_coverage.py coverage.info \
        --path src/resipe/events/ --min-line 90

Parses the lcov tracefile format (``SF:`` source records with
``DA:<line>,<hits>`` entries, terminated by ``end_of_record``), keeps
the files whose path contains ``--path``, and exits non-zero when the
aggregate line coverage of the selection falls below ``--min-line``
percent — or when the selection is empty, so a renamed directory can't
silently disable the gate.  ``--path`` may repeat; each selection gets
its own report line and every floor must hold.
"""

import argparse
import sys


def parse_lcov(lines):
    """Yields (source_path, {line: hits}) per SF record.

    Later DA entries for the same line are summed, matching lcov's own
    aggregation across test binaries.
    """
    path = None
    hits = {}
    for raw in lines:
        line = raw.strip()
        if line.startswith("SF:"):
            path = line[3:]
            hits = {}
        elif line.startswith("DA:") and path is not None:
            fields = line[3:].split(",")
            try:
                lineno = int(fields[0])
                count = int(fields[1])
            except (IndexError, ValueError):
                raise ValueError(f"malformed DA entry: {line!r}")
            hits[lineno] = hits.get(lineno, 0) + count
        elif line == "end_of_record" and path is not None:
            yield path, hits
            path = None
            hits = {}


def coverage_of(records, needle):
    """(covered, instrumented, per_file) for files whose path contains
    `needle`."""
    covered = 0
    instrumented = 0
    per_file = []
    for path, hits in records:
        if needle not in path:
            continue
        file_cov = sum(1 for c in hits.values() if c > 0)
        covered += file_cov
        instrumented += len(hits)
        per_file.append((path, file_cov, len(hits)))
    return covered, instrumented, per_file


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="line-coverage floor gate over an lcov tracefile")
    parser.add_argument("tracefile", help="lcov .info file")
    parser.add_argument("--path", action="append", required=True,
                        help="path substring selecting the gated files "
                             "(repeatable; every selection must pass)")
    parser.add_argument("--min-line", type=float, default=80.0,
                        help="minimum aggregate line coverage in percent "
                             "(default: 80)")
    args = parser.parse_args(argv)

    try:
        with open(args.tracefile, encoding="utf-8") as fh:
            records = list(parse_lcov(fh))
    except OSError as err:
        print(f"check_coverage: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"check_coverage: {err}", file=sys.stderr)
        return 2

    failed = False
    for needle in args.path:
        covered, instrumented, per_file = coverage_of(records, needle)
        if instrumented == 0:
            print(f"check_coverage: no instrumented lines match "
                  f"{needle!r} — wrong path or coverage not captured",
                  file=sys.stderr)
            failed = True
            continue
        pct = 100.0 * covered / instrumented
        verdict = "OK" if pct >= args.min_line else "BELOW FLOOR"
        print(f"{needle}: {covered}/{instrumented} lines "
              f"({pct:.1f}%, floor {args.min_line:.1f}%) {verdict}")
        for path, file_cov, file_lines in sorted(per_file):
            file_pct = 100.0 * file_cov / file_lines if file_lines else 0.0
            print(f"  {path}: {file_cov}/{file_lines} ({file_pct:.1f}%)")
        if pct < args.min_line:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
