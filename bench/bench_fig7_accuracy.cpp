// Reproduces Fig. 7: classification accuracy of the six benchmark
// networks (MLP-1/2 on the digit task; CNN-1..4 on the object task)
// mapped through the ReSiPE circuit model, sweeping ReRAM process
// variation sigma over {0, 5, 10, 15, 20}% (Sec. IV-C).
//
// Expected shape: the sigma = 0 column isolates the circuit
// non-linearity penalty (< ~2.5%); accuracy degrades as sigma grows,
// and the deeper networks degrade more (1..15% at sigma = 20%).
//
// Usage: bench_fig7_accuracy [--quick] [--full]
//   --quick : MLPs + LeNet only, 1 Monte-Carlo seed (CI-friendly)
//   --full  : all six networks, 2 Monte-Carlo seeds (default)
#include <cctype>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_report.hpp"
#include "resipe/eval/accuracy.hpp"

int main(int argc, char** argv) {
  using namespace resipe;

  bench::BenchReport report("fig7_accuracy", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  eval::AccuracyConfig cfg;
  cfg.weight_cache_dir = ".";
  cfg.verbose = true;
  if (quick) cfg.mc_seeds = 1;

  std::puts("=== Fig. 7: accuracy under circuit non-linearity and "
            "process variation ===\n");

  std::vector<eval::NetworkAccuracy> rows;
  const auto nets = nn::all_benchmarks();
  const std::size_t count = quick ? 3 : nets.size();
  for (std::size_t i = 0; i < count; ++i) {
    std::printf("-- %s --\n", nn::benchmark_name(nets[i]).c_str());
    rows.push_back(eval::evaluate_network_accuracy(nets[i], cfg));
  }

  std::puts("");
  std::cout << eval::render_accuracy(rows);

  report.add("networks", static_cast<double>(rows.size()));
  report.add("mode", quick ? "quick" : "full");
  for (const auto& row : rows) {
    std::string key = row.name;
    for (char& ch : key) {
      if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    }
    std::string acc_key = key;
    acc_key += "_software_acc";
    report.add(acc_key, row.software_accuracy);
    if (!row.accuracy.empty()) {
      std::string max_key = key;
      max_key += "_acc_sigma_max";
      report.add(max_key, row.accuracy.back());
    }
  }
  return report.emit();
}
