// Roofline micro-bench: runs the annotated hot kernels with work
// accounting enabled, calibrates the machine ceilings and reports each
// kernel's achieved GFLOP/s / GB/s / arithmetic intensity against the
// roofline.  The BENCH_JSON figures feed the continuous regression
// tracker (tools/collect_bench.py --history + tools/bench_diff.py).
#include <cctype>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_report.hpp"
#include "resipe/circuits/params.hpp"
#include "resipe/circuits/transient.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/crossbar/crossbar.hpp"
#include "resipe/crossbar/ir_drop.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/perf/roofline.hpp"
#include "resipe/perf/work_model.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"
#include "resipe/telemetry/telemetry.hpp"

namespace {

std::string figure_key(const std::string& kernel, const char* suffix) {
  std::string key = kernel;
  for (char& ch : key) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return key + "_" + suffix;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("roofline", argc, argv);

  telemetry::set_enabled(true);
  perf::set_accounting_enabled(true);

  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  constexpr std::size_t kRows = 128;
  constexpr std::size_t kCols = 64;
  constexpr std::size_t kReps = 200;
  constexpr std::size_t kBatch = 32;

  Rng rng(0xBEEF);
  std::vector<double> g(kRows * kCols);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());

  // FastMvm single + batch over encoded random inputs.
  const resipe_core::FastMvm mvm(params, kRows, kCols, g);
  const resipe_core::SpikeCodec codec(params);
  std::vector<double> t_in(kBatch * kRows);
  for (double& t : t_in) {
    t = codec.encode(rng.uniform(0.0, 1.0)).arrival_time;
  }
  std::vector<double> t_out(kRows > 0 ? kCols : 0);
  for (std::size_t i = 0; i < kReps; ++i) {
    mvm.mvm_times({t_in.data(), kRows}, t_out);
  }
  std::vector<double> t_out_batch(kBatch * kCols);
  resipe_core::FastMvm::BatchScratch scratch;
  for (std::size_t i = 0; i < kReps / 8; ++i) {
    mvm.mvm_times_batch(t_in, kBatch, t_out_batch, scratch);
  }

  // Faithful tile path (per-cell model) at a smaller shape.
  resipe_core::ResipeTile tile(params, 32, 16, spec);
  std::vector<double> g_tile(32 * 16);
  for (double& v : g_tile) v = rng.uniform(spec.g_min(), spec.g_max());
  tile.program(g_tile, rng);
  std::vector<circuits::Spike> spikes(32);
  for (auto& s : spikes) s = codec.encode(rng.uniform(0.0, 1.0));
  for (std::size_t i = 0; i < kReps / 4; ++i) (void)tile.execute(spikes);

  // IR-drop solve over the tile's crossbar.
  crossbar::WireModel wires;
  wires.r_wordline_segment = 0.5;
  wires.r_bitline_segment = 0.5;
  std::vector<double> v_wl(32, 0.1);
  for (std::size_t i = 0; i < kReps / 4; ++i) {
    (void)crossbar::drives_with_ir_drop(tile.crossbar(), v_wl, wires);
  }

  // Transient RK4 reference MAC.
  std::vector<double> g_col(spikes.size());
  for (std::size_t i = 0; i < g_col.size(); ++i) g_col[i] = g_tile[i];
  for (std::size_t i = 0; i < 8; ++i) {
    (void)circuits::transient_mac(params, g_col, spikes, 256);
  }

  const perf::MachineProfile machine = perf::calibrate_machine(40.0);
  const perf::RooflineReport roofline =
      perf::build_roofline_report(machine);
  std::cout << roofline.render_ascii() << "\n";
  // The work model books the same flop counts on either path (SIMD
  // changes how fast the flops run, not how many the kernel owes), so
  // achieved-GFLOP/s deltas across this line are real rate changes.
  std::cout << "simd: isa " << simd::active_isa() << ", march "
            << simd::march_flags() << "\n";

  report.add("peak_gflops", machine.peak_gflops);
  report.add("peak_gbs", machine.peak_gbs);
  report.add("ridge_flop_per_byte", machine.ridge());
  for (const perf::KernelRates& k : roofline.kernels) {
    // Intensity is a shape property (stable across machines); rates
    // move with the machine, so the regression gate keys on *_gflops.
    report.add(figure_key(k.name, "intensity"), k.intensity);
    if (k.timed) {
      report.add(figure_key(k.name, "gflops"), k.gflops);
      report.add(figure_key(k.name, "gbs"), k.gbs);
    }
  }
  return report.emit();
}
