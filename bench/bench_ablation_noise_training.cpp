// Ablation: variation-aware training ([22]-style).
//
// The paper's mitigation outlook for process variation is device- and
// circuit-side; the complementary algorithm-side fix is to train the
// network *through* weight noise so the loss surface flattens around
// the programmed point.  This bench trains MLP-2 twice — plain and
// with multiplicative weight-noise injection — and compares ReSiPE
// accuracy across an extended sigma sweep.  The subject is a narrow
// MLP (784 -> 16 -> 10): its 16-wide bottleneck has little noise
// averaging, so variation actually bites (the wide benchmark MLPs shrug
// off even 30% sigma).
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"

namespace {

using namespace resipe;

double hw_accuracy(nn::Sequential& model, const nn::Dataset& test,
                   const nn::Tensor& calib, double sigma,
                   std::uint64_t seed) {
  resipe_core::EngineConfig ec;
  ec.device.variation_sigma = sigma;
  ec.program_seed = seed;
  const resipe_core::ResipeNetwork hw(model, ec, calib);
  return nn::evaluate_with(
      test, [&hw](const nn::Tensor& b) { return hw.forward(b); });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("ablation_noise_training", argc, argv);
  std::puts("=== Ablation: variation-aware training (narrow MLP) ===\n");

  Rng data_rng(19);
  const nn::Dataset train = nn::synthetic_digits(1800, data_rng);
  const nn::Dataset test = nn::synthetic_digits(300, data_rng);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 32; ++i) idx.push_back(i);
  auto [calib, labels] = train.gather(idx);
  (void)labels;

  TextTable t({"Training", "software", "sigma=0", "sigma=20%",
               "sigma=35%", "sigma=50%"});
  for (double noise : {0.0, 0.20}) {
    Rng model_rng(3);
    nn::Sequential model("narrow-mlp");
    model.emplace<nn::Flatten>();
    model.emplace<nn::Dense>(784, 16, model_rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Dense>(16, 10, model_rng);
    nn::TrainConfig cfg;
    // Noisy gradients need more steps to converge.
    cfg.epochs = noise > 0.0 ? 10 : 4;
    cfg.lr = 1e-3;
    cfg.weight_noise_sigma = noise;
    nn::fit(model, train, test, cfg);

    std::vector<std::string> row{
        noise == 0.0 ? "plain" : "noise-injected (20%)",
        format_percent(nn::evaluate(model, test))};
    for (double sigma : {0.0, 0.20, 0.35, 0.50}) {
      // Average two chips to tame MC noise.
      const double acc = 0.5 * (hw_accuracy(model, test, calib, sigma, 1) +
                                hw_accuracy(model, test, calib, sigma, 2));
      row.push_back(format_percent(acc));
      if (sigma == 0.35) {
        report.add(noise == 0.0 ? "plain_acc_sigma35"
                                : "noisy_acc_sigma35",
                   acc);
      }
    }
    t.add_row(std::move(row));
  }
  std::puts(t.str().c_str());
  std::puts("With enough optimization steps (noisy gradients converge\n"
            "slower -- the injected run gets 10 epochs vs 4), training\n"
            "through weight noise flattens the loss around the\n"
            "programmed point and buys 10-25 points of accuracy exactly\n"
            "where Fig. 7 degrades.");
  return report.emit();
}
