// Parallel-runtime scaling: wall time of the accuracy sweep and the
// yield sweep at 1/2/4/8 worker threads.
//
// Both sweeps are embarrassingly parallel Monte-Carlo fans with
// bit-identical results at any thread count (see DESIGN.md "Parallel
// runtime"), so the interesting figure is pure speedup.  On a 1-core
// container the curve is flat (~1x) — the BENCH_JSON records
// hardware_threads so readers can tell a scheduler problem from a
// hardware ceiling.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "resipe/common/parallel.hpp"
#include "resipe/eval/accuracy.hpp"
#include "resipe/eval/yield.hpp"

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("parallel_scaling", argc, argv);
  report.add("hardware_threads", static_cast<double>(hardware_threads()));

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  // Accuracy sweep: MLP-1, 2 sigmas x 4 Monte-Carlo seeds = 8 arms.
  // Training runs inside the timed region (serial, identical across
  // thread counts); the config keeps it small so the arm fan dominates
  // the measurement.
  eval::AccuracyConfig acc_cfg;
  acc_cfg.sigmas = {0.0, 0.10};
  acc_cfg.train_samples = 600;
  acc_cfg.test_samples = 120;
  acc_cfg.epochs = 1;
  acc_cfg.mc_seeds = 4;

  std::printf("accuracy sweep (mlp1, %zu arms):\n",
              acc_cfg.sigmas.size() * acc_cfg.mc_seeds);
  double acc_t1 = 0.0;
  for (const std::size_t t : thread_counts) {
    eval::AccuracyConfig cfg = acc_cfg;
    cfg.threads = t;
    const double s = seconds_of([&] {
      const auto row =
          eval::evaluate_network_accuracy(nn::BenchmarkNet::kMlp1, cfg);
      if (row.accuracy.empty()) std::abort();
    });
    if (t == 1) acc_t1 = s;
    const double speedup = acc_t1 / s;
    std::printf("  threads=%zu: %7.3f s  (%.2fx)\n", t, s, speedup);
    report.add("accuracy_eval_s_t" + std::to_string(t), s);
    report.add("accuracy_eval_speedup_t" + std::to_string(t), speedup);
  }

  // Yield sweep: 3 sigmas x 16 chips = 48 independent cells.
  eval::YieldConfig yld_cfg;
  yld_cfg.sigmas = {0.0, 0.10, 0.20};
  yld_cfg.chips_per_sigma = 16;
  yld_cfg.matrix_rows = 48;
  yld_cfg.matrix_cols = 12;
  yld_cfg.samples_per_chip = 48;

  std::printf("yield sweep (%zu cells):\n",
              yld_cfg.sigmas.size() * yld_cfg.chips_per_sigma);
  double yld_t1 = 0.0;
  for (const std::size_t t : thread_counts) {
    eval::YieldConfig cfg = yld_cfg;
    cfg.threads = t;
    const double s = seconds_of([&] {
      const auto points = eval::mvm_yield(resipe_core::EngineConfig{}, cfg);
      if (points.empty()) std::abort();
    });
    if (t == 1) yld_t1 = s;
    const double speedup = yld_t1 / s;
    std::printf("  threads=%zu: %7.3f s  (%.2fx)\n", t, s, speedup);
    report.add("yield_sweep_s_t" + std::to_string(t), s);
    report.add("yield_sweep_speedup_t" + std::to_string(t), speedup);
  }

  return report.emit();
}
