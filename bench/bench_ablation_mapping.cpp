// Ablation: signed-weight mapping strategy.
//
// Compares the three ways of realizing signed weights on positive
// conductances — differential column pairs, complementary pairs, and a
// shared offset column — on (a) MVM reconstruction error through the
// full circuit model and (b) physical column cost.
#include <cstdio>

#include <string>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/fidelity.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("ablation_mapping", argc, argv);
  std::puts("=== Ablation: signed-weight mapping strategy ===\n");
  std::puts("32x8 random signed matrix through the full circuit model;\n"
            "errors relative to the largest reference output.\n");
  TextTable t({"Strategy", "sigma", "RMSE", "Worst error", "Phys columns"});
  for (double sigma : {0.0, 0.10}) {
    for (auto strategy : {crossbar::SignedMapping::kDifferentialPair,
                          crossbar::SignedMapping::kComplementaryPair,
                          crossbar::SignedMapping::kOffsetColumn}) {
      resipe_core::EngineConfig cfg;
      cfg.mapping = strategy;
      cfg.device.variation_sigma = sigma;
      const auto score = eval::mvm_fidelity(cfg);
      const std::size_t phys_cols =
          strategy == crossbar::SignedMapping::kOffsetColumn ? 9 : 16;
      t.add_row({crossbar::to_string(strategy), format_percent(sigma),
                 format_percent(score.rmse), format_percent(score.worst),
                 std::to_string(phys_cols)});
      if (sigma > 0.0) {
        std::string key = crossbar::to_string(strategy);
        for (char& ch : key) {
          if (ch == ' ' || ch == '-') ch = '_';
        }
        report.add(key + "_rmse_sigma10", score.rmse);
      }
    }
  }
  std::puts(t.str().c_str());
  std::puts("The differential pair parks small weights at G_min on both\n"
            "columns, minimizing absolute variation noise — most robust.\n"
            "The offset column halves the column overhead but couples\n"
            "every output to one shared reference.");
  return report.emit();
}
