// bench_serving — open-loop Poisson saturation sweep + failover study.
//
// Part 1 (graceful degradation): offers Poisson traffic at a ladder of
// rates spanning the pool's computed capacity and reports, per rate,
// the served throughput, shed rate and latency percentiles of the
// *admitted* requests.  The acceptance shape: past the knee the p99 of
// admitted requests stays bounded (the deadline sheds the tail) while
// the shed rate — reported, never silent — absorbs the overload.
//
// Part 2 (failover): the same pool with one replica carrying injected
// stuck-at defects and hair-trigger health thresholds.  The canary
// probes quarantine the bad replica, retries reroute the in-flight
// work, and the served accuracy must stay within 0.5% of the
// fault-free pool.
//
// Part 3 (tracing & SLO): a traced run at the knee with three tenants
// must pass the span-conservation audit; the SLO monitor scores it
// into error-budget figures, and the journal's wall-clock overhead is
// measured against an untraced twin (budget: < 2%).
//
// Everything runs on the virtual clock, so every figure is
// deterministic and thread-count invariant.
//
//   bench_serving [--quick] [--duration S] [--train N] [--images N]
//                 [--epochs N] [--seed K] [--json FILE]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"
#include "resipe/serve/pool.hpp"
#include "resipe/serve/scheduler.hpp"
#include "resipe/serve/slo.hpp"
#include "resipe/serve/trace.hpp"
#include "resipe/serve/traffic.hpp"
#include "resipe/telemetry/timer.hpp"

namespace {

using namespace resipe;

const char* arg_value(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

struct RunResult {
  serve::ServingStats stats;
  double accuracy = 0.0;  ///< over served responses, joined via tag
  std::vector<serve::Response> responses;
  std::uint64_t run_ns = 0;  ///< wall-clock of scheduler.run() alone
};

RunResult run_trace(serve::ChipPool& pool, const serve::ServeConfig& scfg,
                    const nn::Dataset& data, double rate, double duration,
                    std::uint64_t traffic_seed,
                    serve::EventJournal* journal = nullptr,
                    std::uint64_t tenants = 1) {
  serve::TrafficConfig traffic;
  traffic.rate = rate;
  traffic.duration = duration;
  traffic.seed = traffic_seed;
  traffic.tenants = tenants;
  const std::vector<serve::Request> trace =
      serve::poisson_traffic(data.images, traffic);

  serve::Scheduler scheduler(pool, scfg);
  scheduler.attach_journal(journal);
  for (const serve::Request& r : trace) scheduler.submit(r);
  const std::uint64_t t0 = telemetry::now_ns();
  std::vector<serve::Response> responses = scheduler.run();

  RunResult out;
  out.run_ns = telemetry::now_ns() - t0;
  out.stats = scheduler.stats();
  std::size_t correct = 0, served = 0;
  for (const serve::Response& r : responses) {
    if (!r.served()) continue;
    ++served;
    std::size_t best = 0;
    for (std::size_t j = 1; j < r.logits.size(); ++j) {
      if (r.logits[j] > r.logits[best]) best = j;
    }
    if (static_cast<int>(best) == data.labels[r.tag]) ++correct;
  }
  out.accuracy = served > 0 ? static_cast<double>(correct) /
                                  static_cast<double>(served)
                            : 0.0;
  out.responses = std::move(responses);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("serving", argc, argv);
  const bool quick = has_flag(argc, argv, "--quick");
  const double duration =
      std::atof(arg_value(argc, argv, "--duration", quick ? "0.02" : "0.1"));
  const auto train_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--train", quick ? "128" : "256")));
  const auto test_n = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--images", quick ? "64" : "128")));
  const auto epochs = static_cast<std::size_t>(
      std::atoi(arg_value(argc, argv, "--epochs", quick ? "2" : "3")));
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "42")));
  constexpr std::size_t kChips = 3;

  try {
    // --- one trained model shared by every experiment.
    Rng data_rng(7);
    Rng train_rng = data_rng.split();
    Rng test_rng = data_rng.split();
    const nn::Dataset train = nn::synthetic_digits(train_n, train_rng);
    const nn::Dataset test = nn::synthetic_digits(test_n, test_rng);
    Rng model_rng(0xC0FFEEull);
    nn::Sequential model =
        nn::build_benchmark(nn::BenchmarkNet::kMlp1, model_rng);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 32;
    tc.lr = 1e-3;
    const auto tr = nn::fit(model, train, test, tc);
    std::printf("model %s: test acc %.3f\n", model.name().c_str(),
                tr.test_accuracy);

    std::vector<std::size_t> calib_idx;
    for (std::size_t i = 0; i < std::min<std::size_t>(48, train.size()); ++i)
      calib_idx.push_back(i);
    auto [calib, calib_labels] = train.gather(calib_idx);
    (void)calib_labels;

    const auto clean_config = [&](std::size_t c) {
      resipe_core::EngineConfig ec;
      ec.program_seed = hash_seed(seed, 0xC41Bull, c);
      return ec;
    };

    // ================= part 1: saturation sweep =================
    serve::ServeConfig scfg;
    scfg.seed = seed;
    std::vector<resipe_core::EngineConfig> clean_pool_cfg;
    for (std::size_t c = 0; c < kChips; ++c)
      clean_pool_cfg.push_back(clean_config(c));
    serve::ChipPool pool(model, calib, clean_pool_cfg, scfg);

    // Pool capacity from the chips' own service model: full batches
    // back to back on every replica.
    const double batch_s = pool.service_time(0, scfg.batch_max);
    const double capacity = static_cast<double>(kChips) *
                            static_cast<double>(scfg.batch_max) / batch_s;
    std::printf("pool capacity ~%.0f req/s (%zu chips, batch %zu in %.1f us)\n",
                capacity, kChips, scfg.batch_max, batch_s * 1e6);

    // The chips are fast (µs-scale batches), so an uncapped sweep at a
    // multiple of capacity would offer millions of requests.  Cap the
    // offered count per run by shortening the trace, not by sampling —
    // the rate (and therefore the queueing behavior) is unchanged.
    const double max_requests = quick ? 4000.0 : 40000.0;
    const auto capped_duration = [&](double rate) {
      return std::min(duration, max_requests / rate);
    };

    const std::vector<double> load_factors =
        quick ? std::vector<double>{0.5, 1.0, 4.0}
              : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
    TextTable sweep({"load", "rate req/s", "offered", "served", "shed",
                     "shed rate", "p50 ms", "p99 ms", "served req/s"});
    double below_knee_p99 = 0.0, above_knee_p99 = 0.0;
    double max_shed_rate = 0.0, peak_throughput = 0.0;
    for (const double f : load_factors) {
      const double rate = f * capacity;
      const RunResult r = run_trace(pool, scfg, test, rate,
                                    capped_duration(rate),
                                    hash_seed(seed, 0x7AFFull));
      const serve::ServingStats& s = r.stats;
      sweep.add_row({format_fixed(f, 2), format_si(rate, "req/s"),
                     std::to_string(s.submitted),
                     std::to_string(s.served_ok + s.served_degraded),
                     std::to_string(s.shed()), format_percent(s.shed_rate()),
                     format_fixed(s.p50 * 1e3, 3),
                     format_fixed(s.p99 * 1e3, 3), format_si(s.throughput, "req/s")});
      if (f <= 0.5) below_knee_p99 = std::max(below_knee_p99, s.p99);
      if (f >= 2.0) above_knee_p99 = std::max(above_knee_p99, s.p99);
      max_shed_rate = std::max(max_shed_rate, s.shed_rate());
      peak_throughput = std::max(peak_throughput, s.throughput);
    }
    std::puts("\n== saturation sweep ==");
    std::fputs(sweep.str().c_str(), stdout);
    std::printf(
        "p99 of admitted stays bounded past the knee: %.3f ms "
        "(deadline %.0f ms); overload is shed explicitly (max %.1f%%)\n",
        above_knee_p99 * 1e3, scfg.default_deadline * 1e3,
        max_shed_rate * 100.0);

    // ================= part 2: failover study =================
    // Same pool shape; replica 0 carries 1% stuck cells and the health
    // thresholds are tight enough for the canaries to catch it.
    const double study_rate = 0.5 * capacity;
    const double study_duration = capped_duration(study_rate);
    serve::ServeConfig fcfg = scfg;
    fcfg.health.canary_period = study_duration / 20.0;
    fcfg.health.max_canary_mismatch = 0.10;
    fcfg.health.logit_rmse_limit = 0.25;
    fcfg.health.quarantine_after = 1;

    std::vector<resipe_core::EngineConfig> faulty_pool_cfg = clean_pool_cfg;
    faulty_pool_cfg[0].reliability.enabled = true;
    faulty_pool_cfg[0].reliability.faults.stuck_lrs_rate = 0.005;
    faulty_pool_cfg[0].reliability.faults.stuck_hrs_rate = 0.005;
    faulty_pool_cfg[0].reliability.fault_seed = hash_seed(seed, 0xFA17ull);

    serve::ChipPool clean_ref(model, calib, clean_pool_cfg, fcfg);
    serve::ChipPool faulty(model, calib, faulty_pool_cfg, fcfg);
    const RunResult clean_run =
        run_trace(clean_ref, fcfg, test, study_rate, study_duration,
                  hash_seed(seed, 0x7AFFull));
    const RunResult faulty_run =
        run_trace(faulty, fcfg, test, study_rate, study_duration,
                  hash_seed(seed, 0x7AFFull));

    const double acc_delta = clean_run.accuracy - faulty_run.accuracy;
    std::size_t quarantines = 0;
    for (std::size_t c = 0; c < faulty.size(); ++c)
      quarantines += faulty.status(c).quarantines;
    std::puts("\n== failover study (1% stuck cells on replica 0) ==");
    TextTable fo({"pool", "served", "retries", "served acc", "quarantines",
                  "healthy"});
    fo.add_row({"clean",
                std::to_string(clean_run.stats.served_ok +
                               clean_run.stats.served_degraded),
                std::to_string(clean_run.stats.retries),
                format_fixed(clean_run.accuracy, 4), "0",
                std::to_string(clean_ref.healthy_count())});
    fo.add_row({"1% defects",
                std::to_string(faulty_run.stats.served_ok +
                               faulty_run.stats.served_degraded),
                std::to_string(faulty_run.stats.retries),
                format_fixed(faulty_run.accuracy, 4),
                std::to_string(quarantines),
                std::to_string(faulty.healthy_count())});
    std::fputs(fo.str().c_str(), stdout);
    std::printf("served accuracy delta vs clean pool: %+.4f (budget 0.005)\n",
                acc_delta);

    // ============ part 3: lifecycle tracing & SLO scorecard ============
    // One traced run at the knee with three tenants: the journal must
    // pass the span-conservation audit (deterministic, so a failure
    // here is a real scheduler bug, not flakiness), and the SLO monitor
    // scores the same responses into error-budget figures.
    const double slo_rate = 1.0 * capacity;
    const double slo_duration = capped_duration(slo_rate);
    serve::EventJournal journal;
    serve::ChipPool slo_pool(model, calib, clean_pool_cfg, scfg);
    const RunResult traced =
        run_trace(slo_pool, scfg, test, slo_rate, slo_duration,
                  hash_seed(seed, 0x7AFFull), &journal, /*tenants=*/3);
    const serve::TraceAudit audit = serve::audit_trace(journal, traced.stats);
    std::puts("\n== lifecycle trace & SLO (load 1.0, 3 tenants) ==");
    std::fputs(audit.render().c_str(), stdout);
    if (!audit.ok()) {
      std::fprintf(stderr, "trace audit failed\n");
      return 1;
    }

    serve::SloConfig slo;
    slo.window = slo_duration / 10.0;
    slo.latency_target = scfg.default_deadline / 2.0;
    serve::SloMonitor monitor(slo);
    monitor.ingest(traced.responses);
    const serve::SloReport slo_report = monitor.report();
    std::fputs(slo_report.render().c_str(), stdout);

    // Tracing overhead: the same trace through identically-evolving
    // pools with and without a journal attached, min-of-reps wall
    // clock.  The acceptance budget is < 2% — one slot write per
    // lifecycle edge against inference-dominated service.
    const std::size_t reps = quick ? 5 : 9;
    serve::ChipPool plain_pool(model, calib, clean_pool_cfg, scfg);
    serve::ChipPool traced_pool(model, calib, clean_pool_cfg, scfg);
    std::uint64_t plain_ns = ~std::uint64_t{0};
    std::uint64_t traced_ns = ~std::uint64_t{0};
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const RunResult off =
          run_trace(plain_pool, scfg, test, slo_rate, slo_duration,
                    hash_seed(seed, 0x7AFFull));
      serve::EventJournal j;
      const RunResult on =
          run_trace(traced_pool, scfg, test, slo_rate, slo_duration,
                    hash_seed(seed, 0x7AFFull), &j);
      plain_ns = std::min(plain_ns, off.run_ns);
      traced_ns = std::min(traced_ns, on.run_ns);
    }
    const double overhead_frac =
        plain_ns > 0 ? (static_cast<double>(traced_ns) -
                        static_cast<double>(plain_ns)) /
                           static_cast<double>(plain_ns)
                     : 0.0;
    std::printf(
        "tracing overhead: %.2f%% (run %.3f ms untraced vs %.3f ms "
        "traced, %zu events; budget 2%%)\n",
        overhead_frac * 100.0, static_cast<double>(plain_ns) * 1e-6,
        static_cast<double>(traced_ns) * 1e-6, journal.size());

    report.add("pool_capacity_rps", capacity);
    report.add("peak_served_rps", peak_throughput);
    report.add("p99_below_knee_ms", below_knee_p99 * 1e3);
    report.add("p99_above_knee_ms", above_knee_p99 * 1e3);
    report.add("max_shed_rate", max_shed_rate);
    report.add("failover_acc_clean", clean_run.accuracy);
    report.add("failover_acc_faulty", faulty_run.accuracy);
    report.add("failover_acc_delta", acc_delta);
    report.add("failover_quarantines", static_cast<double>(quarantines));
    report.add("failover_retries",
               static_cast<double>(faulty_run.stats.retries));
    report.add("trace_events", static_cast<double>(journal.size()));
    report.add("trace_dropped", static_cast<double>(journal.dropped()));
    report.add("trace_overhead_frac", overhead_frac);
    report.add("slo_availability_budget_used",
               slo_report.total.availability_budget_used);
    report.add("slo_latency_budget_used",
               slo_report.total.latency_budget_used);
    report.add("slo_availability_burn_max",
               slo_report.total.availability_burn_max);
    report.add("slo_latency_burn_max", slo_report.total.latency_burn_max);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return report.emit();
}
