// Event-driven vs dense execution: the activity crossover.
//
// The event engine (EngineConfig::events) wakes a FastMvm column group
// only when an input event lands in its row window and skips silent
// rows inside woken groups, so its cost scales with the *activity
// fraction* (share of inputs that actually spike) instead of the layer
// width.  This bench sweeps the activity fraction under two activity
// shapes and times both paths on the same programmed matrix:
//
//   banded  — the active inputs are contiguous (the shape im2col
//             produces when whole input channels are silent): entire
//             32-row tile groups fall silent and are skipped wholesale.
//   random  — the same activity scattered uniformly: groups rarely
//             sleep, so only the in-group row skipping helps, and the
//             dense SIMD kernel wins until activity is very low.
//
// Both paths are bit-identical by construction (asserted here on every
// sweep point); the only question is where the crossover sits.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/common/table.hpp"
#include "resipe/resipe/network.hpp"

namespace {

using resipe::Rng;
using resipe::resipe_core::EngineConfig;
using resipe::resipe_core::ProgrammedMatrix;

constexpr std::size_t kIn = 512;   // 16 row blocks at 32-row tiles
constexpr std::size_t kOut = 128;  // 4 column blocks at 32-col tiles
constexpr std::size_t kReps = 300;

/// Builds one activity pattern: `fraction` of the kIn inputs carry a
/// value in (0, 1], the rest are exactly 0.0 (the codec's silent-row
/// encoding).  Banded packs the active inputs at the front; random
/// scatters them.
std::vector<double> make_input(double fraction, bool banded, Rng& rng) {
  std::vector<double> x(kIn, 0.0);
  const auto active =
      static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(kIn)));
  if (banded) {
    for (std::size_t i = 0; i < active && i < kIn; ++i) {
      x[i] = rng.uniform(0.05, 1.0);
    }
  } else {
    // Exactly `active` hits via a partial Fisher-Yates over the index
    // space — keeps the two shapes at identical event counts.
    std::vector<std::size_t> idx(kIn);
    for (std::size_t i = 0; i < kIn; ++i) idx[i] = i;
    for (std::size_t i = 0; i < active && i < kIn; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(kIn) - 1));
      std::swap(idx[i], idx[j]);
      x[idx[i]] = rng.uniform(0.05, 1.0);
    }
  }
  return x;
}

double time_forward_us(const ProgrammedMatrix& pm,
                       const std::vector<double>& x,
                       std::vector<double>& y) {
  // Warm-up settles the thread-local queue/executor allocations.
  pm.forward(x, y);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kReps; ++r) pm.forward(x, y);
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return total_s / static_cast<double>(kReps) * 1.0e6;
}

/// Linear interpolation of the activity where speedup crosses 1.0,
/// scanning from sparse to dense.  Returns 1.0 when the event path
/// never loses, 0.0 when it never wins.
double crossover(const std::vector<double>& activity,
                 const std::vector<double>& speedup) {
  double result = 0.0;
  for (std::size_t i = 0; i < activity.size(); ++i) {
    if (speedup[i] < 1.0) continue;
    if (i == 0) return 1.0;  // wins even at full activity
    const double a1 = activity[i - 1], a2 = activity[i];
    const double s1 = speedup[i - 1], s2 = speedup[i];
    result = (s2 == s1) ? a2 : a1 + (1.0 - s1) / (s2 - s1) * (a2 - a1);
    break;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("event_engine", argc, argv);

  EngineConfig dense_cfg;
  dense_cfg.tile_rows = 32;
  dense_cfg.tile_cols = 32;
  EngineConfig event_cfg = dense_cfg;
  event_cfg.events.enabled = true;
  report.set_config(event_cfg);

  // Identical seeds => identical programmed conductances, so the two
  // paths disagree only if the sparse kernels have a bug.
  Rng rng_a(7), rng_b(7), rng_x(8);
  std::vector<double> w(kIn * kOut), b(kOut);
  for (double& v : w) v = rng_a.uniform(-0.5, 0.5);
  for (double& v : b) v = rng_a.uniform(-0.2, 0.2);
  {
    // Replay the same weight draws on rng_b so the programming streams
    // stay aligned.
    std::vector<double> scratch(kIn * kOut + kOut);
    for (double& v : scratch) v = rng_b.uniform(-0.5, 0.5);
  }
  const ProgrammedMatrix pm_dense(dense_cfg, w, b, kIn, kOut, rng_a);
  const ProgrammedMatrix pm_event(event_cfg, w, b, kIn, kOut, rng_b);

  std::printf("=== Event-driven vs dense: activity sweep (%zux%zu, "
              "tile 32x32, %zu reps) ===\n\n",
              kIn, kOut, kReps);

  const std::vector<double> activities = {1.0, 0.5, 0.25, 0.1, 0.05, 0.02};
  TextTable t({"Activity", "Pattern", "Dense us", "Event us", "Speedup",
               "Events"});
  bool identical = true;
  for (const bool banded : {true, false}) {
    std::vector<double> speedups;
    for (const double activity : activities) {
      const std::vector<double> x = make_input(activity, banded, rng_x);
      std::size_t events = 0;
      for (const double v : x) events += v > 0.0 ? 1 : 0;

      std::vector<double> y_dense(kOut), y_event(kOut);
      const double dense_us = time_forward_us(pm_dense, x, y_dense);
      const double event_us = time_forward_us(pm_event, x, y_event);
      identical &= std::memcmp(y_dense.data(), y_event.data(),
                               kOut * sizeof(double)) == 0;

      const double speedup = dense_us / event_us;
      speedups.push_back(speedup);
      char pct[16], d_us[24], e_us[24], sp[16];
      std::snprintf(pct, sizeof pct, "%.0f%%", activity * 100.0);
      std::snprintf(d_us, sizeof d_us, "%.2f", dense_us);
      std::snprintf(e_us, sizeof e_us, "%.2f", event_us);
      std::snprintf(sp, sizeof sp, "%.2fx", speedup);
      t.add_row({pct, banded ? "banded" : "random", d_us, e_us, sp,
                 std::to_string(events)});

      const std::string tag = (banded ? std::string("banded_act")
                                      : std::string("random_act")) +
                              std::to_string(static_cast<int>(
                                  std::lround(activity * 100.0)));
      report.add("speedup_" + tag, speedup);
      if (banded) {
        report.add("event_us_" + tag, event_us);
        if (activity == 1.0) report.add("dense_us_act100", dense_us);
        if (activity == 0.1) {
          report.add("events_per_inference_act10",
                     static_cast<double>(events));
        }
      }
    }
    report.add(banded ? "crossover_activity_banded"
                      : "crossover_activity_random",
               crossover(activities, speedups));
  }
  std::puts(t.str().c_str());
  if (!identical) {
    std::puts("ERROR: event path diverged from the dense reference");
    return 1;
  }
  std::puts("Banded activity sleeps whole 32-row tile groups, so the "
            "event path\npulls ahead early; scattered activity only "
            "skips rows inside woken\ngroups and needs much lower "
            "activity to beat the dense SIMD kernel.");
  return report.emit();
}
