// Introspection overhead and report figures.
//
// The contract in docs/observability.md: a network built with
// `EngineConfig::introspect.enabled == false` (the default) takes the
// exact legacy forward path — bit-identical logits and <2% wall-time
// overhead versus a config that never heard of the introspect knob.
// This bench measures both halves of that claim, then times a full
// inspect() pass and records its headline figures so the perf
// trajectory covers the probes themselves.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench_report.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/introspect/inspect.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/network.hpp"

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("inspection", argc, argv);

  std::puts("=== Introspection: disabled-path overhead + probe cost ===\n");

  Rng data_rng(7);
  Rng train_rng = data_rng.split();
  Rng test_rng = data_rng.split();
  const nn::Dataset train = nn::synthetic_digits(512, train_rng);
  const nn::Dataset test = nn::synthetic_digits(96, test_rng);

  Rng model_rng(0xC0FFEEull +
                static_cast<std::uint64_t>(nn::BenchmarkNet::kMlp1));
  nn::Sequential model = nn::build_benchmark(nn::BenchmarkNet::kMlp1,
                                             model_rng);
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 32;
  tc.lr = 1e-3;
  const auto tr = nn::fit(model, train, test, tc);
  std::printf("trained %s: test acc %.3f\n\n", model.name().c_str(),
              tr.test_accuracy);

  std::vector<std::size_t> calib_idx;
  for (std::size_t i = 0; i < 48; ++i) calib_idx.push_back(i);
  const auto [calib, calib_labels] = train.gather(calib_idx);
  (void)calib_labels;

  resipe_core::EngineConfig cfg_off;
  cfg_off.device.variation_sigma = 0.1;
  resipe_core::EngineConfig cfg_on = cfg_off;
  cfg_on.introspect.enabled = true;

  const resipe_core::ResipeNetwork net_off(model, cfg_off, calib);
  const resipe_core::ResipeNetwork net_on(model, cfg_on, calib);

  // Half 1: bit-identity.  Same seeds, same programming — the
  // introspect knob must not perturb a single bit of the logits.
  const nn::Tensor logits_off = net_off.forward(test.images);
  const nn::Tensor logits_on = net_on.forward(test.images);
  double max_diff = 0.0;
  const auto a = logits_off.data();
  const auto b = logits_on.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  std::printf("bit-identity: max |logit diff| = %.17g\n", max_diff);
  report.add("max_logit_diff_flag_on_vs_off", max_diff);

  // Half 2: overhead.  Both networks run the identical forward path;
  // alternate the timing order across repetitions so cache warmth
  // cannot systematically favour either side.
  const int reps = 5;
  double t_off = 0.0, t_on = 0.0;
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      t_off += seconds_of([&] { (void)net_off.forward(test.images); });
      t_on += seconds_of([&] { (void)net_on.forward(test.images); });
    } else {
      t_on += seconds_of([&] { (void)net_on.forward(test.images); });
      t_off += seconds_of([&] { (void)net_off.forward(test.images); });
    }
  }
  const double overhead = t_on / t_off - 1.0;
  std::printf("forward x%d: flag off %.3f s, flag on %.3f s "
              "(overhead %+.2f%%)\n",
              reps, t_off, t_on, overhead * 100.0);
  report.add("forward_s_flag_off", t_off);
  report.add("forward_s_flag_on", t_on);
  report.add("disabled_overhead_frac", overhead);

  // Probe cost and headline figures of a full inspection pass.
  introspect::InspectionReport insp;
  const double t_inspect = seconds_of(
      [&] { insp = introspect::inspect(net_on, test.images, test.labels); });
  std::printf("inspect(): %.3f s over %zu images\n", t_inspect,
              insp.batch_size);
  report.add("inspect_s", t_inspect);
  report.add("inspect_cost_vs_forward",
             t_inspect / (t_off / static_cast<double>(reps)));
  report.add("analog_accuracy", insp.analog_accuracy);
  report.add("digital_accuracy", insp.digital_accuracy);
  report.add("logits_rmse", insp.logits_rmse);
  report.add("batch_energy_j", insp.total_energy);
  for (const auto& lr : insp.layers) {
    if (!lr.error.computed) continue;
    const std::string step = std::to_string(lr.step);
    report.add("err_total_step" + step, lr.error.total);
    report.add("err_quant_step" + step, lr.error.quantization);
    report.add("err_var_step" + step, lr.error.variation);
    report.add("err_nonlin_step" + step, lr.error.nonlinearity);
  }
  std::printf("\n%s", insp.render_ascii().c_str());
  return report.emit();
}
