// Ablation: manufacturing-yield view of Fig. 7.
//
// Fig. 7 reports mean accuracy across device instantiations; this
// bench asks the manufacturer's question — what fraction of chips
// meets an MVM error bound at each process-variation sigma?
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_report.hpp"
#include "resipe/eval/yield.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("ablation_yield", argc, argv);
  std::puts("=== Ablation: Monte-Carlo chip yield vs variation sigma "
            "===\n");
  eval::YieldConfig cfg;
  const auto points = eval::mvm_yield(resipe_core::EngineConfig{}, cfg);
  std::puts(eval::render_yield(points, cfg.rmse_bound).c_str());
  std::puts("\nWith an error-correcting margin in mind, the 5% RMSE\n"
            "bound tracks roughly where Fig. 7's accuracy knee sits.");

  for (const auto& p : points) {
    const int pct = static_cast<int>(std::lround(p.sigma * 100.0));
    report.add("yield_sigma_" + std::to_string(pct) + "pct", p.yield);
  }
  report.add("rmse_bound", cfg.rmse_bound);
  return report.emit();
}
