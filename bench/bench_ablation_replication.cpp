// Ablation: conv position parallelism (the paper's future work).
//
// Sec. V: "post-spike latency could be potentially reduced by
// multi-layer pipelining.  ReSiPE is hence open to future
// microarchitecture optimization toward better layer-wise computing
// latency."  The dominant layer-wise latency in a CNN mapping is the
// conv layers' position multiplexing (one output position per slice);
// replicating a conv layer's tile group processes R positions per
// slice.  This bench sweeps R on CNN-1 (LeNet) and shows the
// latency/throughput/area trade that optimization buys.
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/nn/zoo.hpp"
#include "resipe/resipe/chip.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport bench("ablation_replication", argc, argv);
  std::puts("=== Ablation: conv tile-group replication on CNN-1 ===\n");

  Rng rng(1);
  nn::Sequential model =
      nn::build_benchmark(nn::BenchmarkNet::kCnn1, rng);

  TextTable t({"Replication R", "Tiles", "Area", "Input latency",
               "Inference rate", "Power", "Power eff."});
  for (std::size_t r : {1u, 2u, 4u, 8u, 16u, 49u}) {
    resipe_core::ChipConfig cfg;
    cfg.conv_replication = r;
    const auto report =
        resipe_core::map_network(model, {1, 28, 28}, cfg);
    t.add_row({std::to_string(r), std::to_string(report.total_tiles),
               format_fixed(report.total_area * 1e6, 3) + " mm2",
               format_si(report.input_latency, "s"),
               format_si(report.throughput, "inf/s"),
               format_si(report.power, "W"),
               format_si(report.power_efficiency, "OPS/W")});
    if (r == 1) {
      bench.add("inference_rate_R1", report.throughput);
      bench.add("input_latency_s_R1", report.input_latency);
    } else if (r == 49) {
      bench.add("inference_rate_R49", report.throughput);
      bench.add("area_m2_R49", report.total_area);
    }
  }
  std::puts(t.str().c_str());
  std::puts("Replication divides the conv layers' position multiplexing\n"
            "(latency falls ~R-fold until the 28x28 position count is\n"
            "exhausted) at proportional area; energy per inference — and\n"
            "hence power efficiency — stays put, which is why the paper\n"
            "frames it as a latency optimization.");
  return bench.emit();
}
