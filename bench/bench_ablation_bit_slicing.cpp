// Ablation: bit-sliced weight storage.
//
// Sweeps the (total bits, bits per slice) space on a 32 x 8 mapped
// matrix through the full circuit model: how much fidelity does an
// extra column group buy when the per-cell resolution is limited?
// (ISAAC-style 2-bit slices vs the paper's single 32-level cells.)
#include <cmath>
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/common/table.hpp"
#include "resipe/resipe/bit_slicing.hpp"

namespace {

using namespace resipe;

double sliced_rmse(const resipe_core::SlicingConfig& slicing,
                   double sigma) {
  constexpr std::size_t kIn = 32;
  constexpr std::size_t kOut = 8;
  constexpr std::size_t kSamples = 48;
  Rng rng(77);
  std::vector<double> w(kIn * kOut);
  for (double& v : w) v = rng.normal(0.0, 0.4);
  const std::vector<double> bias(kOut, 0.0);
  std::vector<double> xs(kSamples * kIn);
  for (double& v : xs) v = rng.uniform(0.0, 1.0);

  resipe_core::EngineConfig cfg;
  cfg.device.variation_sigma = sigma;
  Rng prog(cfg.program_seed);
  resipe_core::SlicedMatrix sm(cfg, slicing, w, bias, kIn, kOut, prog);
  sm.set_input_scale(1.0);
  sm.calibrate_alpha(xs, kSamples);

  std::vector<double> y(kOut, 0.0);
  double ss = 0.0, ref_max = 0.0;
  for (std::size_t s = 0; s < kSamples; ++s) {
    const std::span<const double> x(xs.data() + s * kIn, kIn);
    sm.forward(x, y);
    for (std::size_t j = 0; j < kOut; ++j) {
      double ref = 0.0;
      for (std::size_t i = 0; i < kIn; ++i) ref += x[i] * w[i * kOut + j];
      ss += (y[j] - ref) * (y[j] - ref);
      ref_max = std::max(ref_max, std::abs(ref));
    }
  }
  return std::sqrt(ss / (kSamples * kOut)) / ref_max;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("ablation_bit_slicing", argc, argv);
  std::puts("=== Ablation: bit-sliced weight storage ===\n");
  TextTable t({"Logical bits", "Bits/slice", "Slices", "Column cost",
               "RMSE (sigma=0)", "RMSE (sigma=10%)"});
  struct Case {
    int total, per_slice;
  };
  for (const Case c : {Case{4, 4}, Case{5, 5}, Case{8, 4}, Case{8, 2},
                       Case{12, 4}}) {
    resipe_core::SlicingConfig slicing;
    slicing.total_bits = c.total;
    slicing.bits_per_slice = c.per_slice;
    const double rmse0 = sliced_rmse(slicing, 0.0);
    const double rmse10 = sliced_rmse(slicing, 0.10);
    t.add_row({std::to_string(c.total), std::to_string(c.per_slice),
               std::to_string(slicing.slices()),
               format_ratio(static_cast<double>(slicing.slices()), 0),
               format_percent(rmse0), format_percent(rmse10)});
    const std::string key = std::to_string(c.total) + "b_" +
                            std::to_string(c.per_slice) + "b_slice";
    report.add(key + "_rmse_sigma0", rmse0);
    report.add(key + "_rmse_sigma10", rmse10);
  }
  std::puts(t.str().c_str());
  std::puts("Slicing buys resolution while each cell stays at its\n"
            "reliable precision; under variation the benefit saturates\n"
            "because device noise, not quantization, dominates.");
  return report.emit();
}
