// Reproduces TABLE I: the taxonomy of data formats used by ReRAM PIM
// designs (Sec. II), rendered from the design-class registry.
#include <iostream>

#include "resipe/eval/taxonomy.hpp"

int main() {
  std::cout << "=== TABLE I: data formats in ReRAM PIM designs ===\n\n";
  std::cout << resipe::eval::taxonomy_table();
  return 0;
}
