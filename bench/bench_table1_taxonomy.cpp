// Reproduces TABLE I: the taxonomy of data formats used by ReRAM PIM
// designs (Sec. II), rendered from the design-class registry.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_report.hpp"
#include "resipe/eval/taxonomy.hpp"

int main(int argc, char** argv) {
  resipe::bench::BenchReport report("table1_taxonomy", argc, argv);
  std::cout << "=== TABLE I: data formats in ReRAM PIM designs ===\n\n";
  const std::string table = resipe::eval::taxonomy_table().str();
  std::cout << table;
  report.add("table_lines", static_cast<double>(std::count(
                                table.begin(), table.end(), '\n')));
  return report.emit();
}
