// Diagnostic: per-layer SNR of a lowered network (LeNet) under
// increasing process variation — shows *where* the Fig. 7 accuracy is
// lost (the wide FC layers, whose many-row accumulations average out
// device noise, versus the small conv layers, which do not).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_report.hpp"
#include "resipe/eval/precision.hpp"
#include "resipe/nn/data.hpp"
#include "resipe/nn/train.hpp"
#include "resipe/nn/zoo.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("layer_precision", argc, argv);
  std::puts("=== Per-layer precision of CNN-1 (LeNet) on ReSiPE ===\n");

  Rng data_rng(5);
  const nn::Dataset train = nn::synthetic_digits(1200, data_rng);
  Rng model_rng(1);
  nn::Sequential model =
      nn::build_benchmark(nn::BenchmarkNet::kCnn1, model_rng);
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.lr = 1e-3;
  nn::fit(model, train, nn::Dataset{nn::Tensor({1, 1, 28, 28}), {0}, 10},
          tc);

  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < 8; ++i) idx.push_back(i);
  auto [probe, labels] = train.gather(idx);
  (void)labels;

  for (double sigma : {0.0, 0.10, 0.20}) {
    resipe_core::EngineConfig cfg;
    cfg.device.variation_sigma = sigma;
    std::printf("-- variation sigma = %.0f%% --\n", sigma * 100.0);
    const auto rows = eval::layer_precision(model, cfg, probe, 64);
    std::puts(eval::render_precision(rows).c_str());
    double min_snr = rows.empty() ? 0.0 : rows.front().snr_db;
    for (const auto& r : rows) min_snr = std::min(min_snr, r.snr_db);
    const int pct = static_cast<int>(std::lround(sigma * 100.0));
    report.add("min_layer_snr_db_sigma_" + std::to_string(pct) + "pct",
               min_snr);
  }
  return report.emit();
}
