// Reproduces Fig. 3: the circuit simulation waveforms of one
// single-spiking MAC — (a) the active waveform in S1, (b) the
// computation stage and S2.
//
// Setup matches Sec. III-B/III-D: 100 ns slices, dt = 1 ns at the end
// of S1 (99..100 ns), two active inputs, paper circuit parameters.
#include <cstdio>
#include <iostream>

#include "bench_report.hpp"

#include "resipe/circuits/waveform.hpp"
#include "resipe/common/table.hpp"
#include "resipe/common/units.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  using namespace resipe::units;
  bench::BenchReport report("fig3_waveform", argc, argv);

  const circuits::CircuitParams params =
      circuits::CircuitParams::paper_defaults();
  device::ReramSpec spec = device::ReramSpec::characterization();

  // Two-input MAC (the Fig. 2 example): rows 0 and 1 active.
  resipe_core::ResipeTile tile(params, 2, 1, spec);
  Rng rng(3);
  // R1 = 50 k, R2 = 200 k.
  const std::vector<double> g = {1.0 / (50.0 * kOhm), 1.0 / (200.0 * kOhm)};
  tile.program(g, rng);

  const std::vector<circuits::Spike> inputs = {
      circuits::Spike::at(30.0 * ns), circuits::Spike::at(60.0 * ns)};

  circuits::WaveformRecorder rec;
  tile.trace(inputs, 0, rec);

  const auto out = tile.execute(inputs);
  const auto ideal = tile.ideal_times(inputs);
  const auto v = tile.sample_voltages(inputs);

  std::puts("=== Fig. 3: single-spiking MAC circuit simulation ===\n");
  std::printf("slice length      : %s\n",
              format_si(params.slice_length, "s").c_str());
  std::printf("computation stage : %s (at the end of S1)\n",
              format_si(params.comp_stage, "s").c_str());
  std::printf("inputs            : t_in1 = %s, t_in2 = %s\n",
              format_si(inputs[0].arrival_time, "s").c_str(),
              format_si(inputs[1].arrival_time, "s").c_str());
  std::printf("V(Ccog) sampled   : %s\n", format_si(v[0], "V").c_str());
  std::printf("output spike      : t_out = %s (ideal Eq.6: %s)\n\n",
              format_si(out[0].arrival_time, "s").c_str(),
              format_si(ideal[0], "s").c_str());

  std::puts("---- (a) active waveforms in S1 (0 .. 100 ns) ----");
  {
    circuits::WaveformRecorder s1;
    for (const auto& tr : rec.traces()) {
      if (tr.name.rfind("S2", 0) == 0 || tr.name == "S_out") continue;
      for (std::size_t i = 0; i < tr.time.size(); ++i)
        s1.record(tr.name, tr.time[i], tr.value[i]);
    }
    std::cout << s1.render_ascii(0.0, params.slice_length);
  }

  std::puts("---- (b) computation stage + S2 (99 .. 200 ns) ----");
  {
    circuits::WaveformRecorder s2;
    for (const auto& tr : rec.traces()) {
      if (tr.name.rfind("S2", 0) != 0 && tr.name != "S_out" &&
          tr.name != "V(Ccog)")
        continue;
      for (std::size_t i = 0; i < tr.time.size(); ++i)
        s2.record(tr.name, tr.time[i], tr.value[i]);
    }
    std::cout << s2.render_ascii(params.slice_length - params.comp_stage,
                                 2.0 * params.slice_length);
  }

  report.add("t_out_s", out[0].arrival_time);
  report.add("t_out_ideal_s", ideal[0]);
  report.add("v_ccog_V", v[0]);
  return report.emit();
}
