// Google-benchmark micro-kernels for the simulator hot paths:
// spike codec, FastMvm, the faithful tile model, programming, and the
// baseline functional models.
#include <benchmark/benchmark.h>

#include "resipe/baselines/level_based.hpp"
#include "resipe/baselines/rate_coding.hpp"
#include "resipe/crossbar/crossbar.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"
#include "resipe/resipe/tile.hpp"

namespace {

using namespace resipe;

void BM_SpikeCodecEncode(benchmark::State& state) {
  const resipe_core::SpikeCodec codec(circuits::CircuitParams{});
  double x = 0.0;
  for (auto _ : state) {
    x += 1e-4;
    if (x > 1.0) x = 0.0;
    benchmark::DoNotOptimize(codec.encode(x));
  }
}
BENCHMARK(BM_SpikeCodecEncode);

void BM_FastMvm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const circuits::CircuitParams params;
  const auto xbar = crossbar::make_representative(
      n, n, device::ReramSpec::nn_mapping(), 7);
  const resipe_core::FastMvm mvm(params, xbar);
  std::vector<double> t_in(n), t_out(n);
  for (std::size_t i = 0; i < n; ++i)
    t_in[i] = 10e-9 + 80e-9 * static_cast<double>(i) /
                          static_cast<double>(n);
  for (auto _ : state) {
    mvm.mvm_times(t_in, t_out);
    benchmark::DoNotOptimize(t_out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_FastMvm)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// Batched MVM over one reusable scratch.  Per-iteration allocations are
// zero by construction (BatchScratch only grows on first use and the
// column-major conductance layout is baked into the FastMvm): if this
// bench ever shows per-batch mallocs under a profiler, mvm_times_batch
// has regressed.  Throughput here should be >= the per-sample BM_FastMvm
// figure at equal n — the batch path amortizes the wordline-voltage
// precompute and walks conductances column-contiguously.
void BM_FastMvmBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 32;
  const circuits::CircuitParams params;
  const auto xbar = crossbar::make_representative(
      n, n, device::ReramSpec::nn_mapping(), 7);
  const resipe_core::FastMvm mvm(params, xbar);
  std::vector<double> t_in(kBatch * n), t_out(kBatch * n);
  for (std::size_t i = 0; i < t_in.size(); ++i)
    t_in[i] = 10e-9 + 80e-9 * static_cast<double>(i % n) /
                          static_cast<double>(n);
  resipe_core::FastMvm::BatchScratch scratch;
  for (auto _ : state) {
    mvm.mvm_times_batch(t_in, kBatch, t_out, scratch);
    benchmark::DoNotOptimize(t_out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch * n * n));
}
BENCHMARK(BM_FastMvmBatch)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_TileExecute(benchmark::State& state) {
  const circuits::CircuitParams params;
  resipe_core::ResipeTile tile(params, 32, 32,
                               device::ReramSpec::nn_mapping());
  Rng rng(7);
  std::vector<double> g(32 * 32, 10e-6);
  tile.program(g, rng);
  const resipe_core::SpikeCodec codec(params);
  std::vector<circuits::Spike> in(32);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = codec.encode(static_cast<double>(i) / 31.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile.execute(in));
  }
}
BENCHMARK(BM_TileExecute);

void BM_CrossbarProgram(benchmark::State& state) {
  const auto spec = device::ReramSpec::nn_mapping();
  std::vector<double> g(32 * 32, 10e-6);
  Rng rng(7);
  for (auto _ : state) {
    crossbar::Crossbar xbar(32, 32, spec);
    xbar.program(g, rng);
    benchmark::DoNotOptimize(xbar.column_total_g(0));
  }
}
BENCHMARK(BM_CrossbarProgram);

void BM_LevelFunctionalMvm(benchmark::State& state) {
  const baselines::LevelBasedDesign design;
  std::vector<double> x(32);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<double>(i) / 31.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(design.functional_mvm(x));
  }
}
BENCHMARK(BM_LevelFunctionalMvm);

void BM_RateFunctionalMvm(benchmark::State& state) {
  const baselines::RateCodingDesign design;
  std::vector<double> x(32);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<double>(i) / 31.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(design.functional_mvm(x));
  }
}
BENCHMARK(BM_RateFunctionalMvm);

}  // namespace

BENCHMARK_MAIN();
