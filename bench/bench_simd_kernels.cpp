// Scalar-vs-SIMD kernel comparison bench.
//
// Times the FastMvm batch kernel and the spike-codec batch kernels
// twice over identical inputs — once on the vector path, once under
// simd::ForceScalarGuard — and reports achieved GFLOP/s for both plus
// the speedup ratio.  The *_gflops figures feed the bench_diff
// regression gate (per-ISA baselines: the report is stamped with
// simd_isa, so a scalar build starts its own history); the *_speedup
// ratios are directionless context.
//
// On a scalar build both passes run the same code, the speedups sit at
// ~1.0 and the bench degenerates to a plain kernel-throughput tracker.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "resipe/circuits/params.hpp"
#include "resipe/common/rng.hpp"
#include "resipe/common/simd.hpp"
#include "resipe/device/reram.hpp"
#include "resipe/resipe/fast_mvm.hpp"
#include "resipe/resipe/spike_code.hpp"

namespace {

using namespace resipe;

/// Runs `body` repeatedly until ~`budget_s` of wall time is spent
/// (after one untimed warmup call) and returns seconds per call.
template <typename Body>
double time_per_call(double budget_s, Body&& body) {
  using clock = std::chrono::steady_clock;
  body();  // warmup: scratch growth, page faults, branch history
  std::size_t calls = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < budget_s);
  return elapsed / static_cast<double>(calls);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("simd_kernels", argc, argv);

  const circuits::CircuitParams params;
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();
  constexpr std::size_t kRows = 128;
  constexpr std::size_t kCols = 128;
  constexpr std::size_t kBatch = 32;
  constexpr double kBudget = 0.25;  // seconds per timed variant

  Rng rng(0x51D);
  std::vector<double> g(kRows * kCols);
  for (double& v : g) v = rng.uniform(spec.g_min(), spec.g_max());
  const resipe_core::FastMvm mvm(params, kRows, kCols, std::move(g));
  const resipe_core::SpikeCodec codec(params);

  std::vector<double> x(kBatch * kRows);
  for (double& v : x) v = rng.uniform(0.0, 1.0);
  std::vector<double> t_in(x.size());
  codec.encode_times(x, t_in);
  std::vector<double> t_out(kBatch * kCols);
  resipe_core::FastMvm::BatchScratch scratch;

  // 2 flops per MAC; the transcendental wordline/recovery work is
  // per-row/per-column and amortizes out at this shape, matching the
  // convention of perf/work_model.
  const double mvm_flops = 2.0 * kBatch * kRows * kCols;
  const double codec_flops = 4.0 * x.size();

  const auto mvm_call = [&] {
    mvm.mvm_times_batch(t_in, kBatch, t_out, scratch);
  };
  const auto encode_call = [&] { codec.encode_times(x, t_in); };
  const auto decode_call = [&] { codec.decode_values(t_in, x); };

  struct Row {
    const char* key;
    double flops;
    double simd_s;
    double scalar_s;
  };
  Row rows[] = {
      {"fast_mvm_batch", mvm_flops, time_per_call(kBudget, mvm_call), 0.0},
      {"codec_encode", codec_flops, time_per_call(kBudget, encode_call),
       0.0},
      {"codec_decode", codec_flops, time_per_call(kBudget, decode_call),
       0.0},
  };
  {
    simd::ForceScalarGuard guard;
    rows[0].scalar_s = time_per_call(kBudget, mvm_call);
    rows[1].scalar_s = time_per_call(kBudget, encode_call);
    rows[2].scalar_s = time_per_call(kBudget, decode_call);
  }

  std::printf("simd kernel comparison (isa %s, march %s)\n",
              simd::active_isa(), simd::march_flags());
  std::printf("%-16s %12s %12s %8s\n", "kernel", "simd GFLOP/s",
              "scalar GF/s", "speedup");
  for (const Row& row : rows) {
    const double simd_gflops = row.flops / row.simd_s * 1e-9;
    const double scalar_gflops = row.flops / row.scalar_s * 1e-9;
    const double speedup = row.scalar_s / row.simd_s;
    std::printf("%-16s %12.3f %12.3f %7.2fx\n", row.key, simd_gflops,
                scalar_gflops, speedup);
    report.add(std::string(row.key) + "_simd_gflops", simd_gflops);
    report.add(std::string(row.key) + "_scalar_gflops", scalar_gflops);
    report.add(std::string(row.key) + "_speedup", speedup);
  }
  return report.emit();
}
