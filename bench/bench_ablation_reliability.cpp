// Ablation: device reliability mechanisms beyond Gaussian variation.
//
// The paper models process variation as a normal sigma per [21, 22];
// those same references also characterize stuck-at faults and
// conductance retention drift.  This bench extends the Fig. 7 analysis
// to all three mechanisms at the MVM level: fidelity of a mapped
// 32 x 8 matrix under (a) stuck-at-fault rates, (b) power-law
// retention drift, and (c) wire IR-drop — each isolated, plus a
// combined worst case.
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/fidelity.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("ablation_reliability", argc, argv);

  std::puts("=== Ablation: reliability mechanisms at the MVM level "
            "===\n");

  TextTable t({"Mechanism", "Setting", "MVM RMSE", "Worst error"});
  {
    const auto s = eval::mvm_fidelity(resipe_core::EngineConfig{});
    t.add_row({"baseline", "-", format_percent(s.rmse),
               format_percent(s.worst)});
    report.add("baseline_rmse", s.rmse);
  }
  for (double rate : {0.001, 0.01, 0.05}) {
    resipe_core::EngineConfig cfg;
    cfg.device.stuck_lrs_rate = rate / 2.0;
    cfg.device.stuck_hrs_rate = rate / 2.0;
    const auto s = eval::mvm_fidelity(cfg);
    t.add_row({"stuck-at faults", format_percent(rate) + " total",
               format_percent(s.rmse), format_percent(s.worst)});
  }
  for (double years : {0.1, 1.0, 5.0}) {
    resipe_core::EngineConfig cfg;
    cfg.device.drift_nu = 0.02;
    cfg.retention_time = years * 365.0 * 24.0 * 3600.0;
    const auto s = eval::mvm_fidelity(cfg);
    t.add_row({"retention drift (nu=0.02)",
               format_fixed(years, 1) + " years",
               format_percent(s.rmse), format_percent(s.worst)});
  }
  {
    resipe_core::EngineConfig cfg;
    cfg.model_wire_ir_drop = true;
    cfg.wires.r_wordline_segment = 2.5;
    cfg.wires.r_bitline_segment = 2.5;
    const auto s = eval::mvm_fidelity(cfg);
    t.add_row({"wire IR-drop", "2.5 ohm/segment",
               format_percent(s.rmse), format_percent(s.worst)});
  }
  for (double mv : {1.0, 5.0, 10.0}) {
    resipe_core::EngineConfig cfg;
    cfg.circuit.comparator_offset_sigma = mv * 1e-3;
    const auto s = eval::mvm_fidelity(cfg);
    t.add_row({"comparator mismatch",
               format_fixed(mv, 0) + " mV sigma",
               format_percent(s.rmse), format_percent(s.worst)});
  }
  {
    resipe_core::EngineConfig cfg;
    cfg.device.variation_sigma = 0.10;
    cfg.device.stuck_lrs_rate = 0.005;
    cfg.device.stuck_hrs_rate = 0.005;
    cfg.device.drift_nu = 0.02;
    cfg.retention_time = 365.0 * 24.0 * 3600.0;
    cfg.model_wire_ir_drop = true;
    const auto s = eval::mvm_fidelity(cfg);
    t.add_row({"combined", "sigma 10% + 1% SAF + 1y drift + wires",
               format_percent(s.rmse), format_percent(s.worst)});
    report.add("combined_rmse", s.rmse);
    report.add("combined_worst", s.worst);
  }
  std::puts(t.str().c_str());
  std::puts("Power-law drift acts as a slowly-growing global gain error\n"
            "(a periodic recalibration of the per-layer decode scale\n"
            "would absorb it); stuck-at faults hit hardest because a\n"
            "stuck-LRS cell injects a full-scale spurious weight into\n"
            "one column; wire IR-drop is negligible at 32 x 32 with\n"
            ">= 50 k cells.");
  return report.emit();
}
