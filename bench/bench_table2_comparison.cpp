// Reproduces TABLE II: power, power efficiency, computing latency and
// area of ReSiPE versus the level-based [14,17], rate-coding [11,13]
// and PWM-based [15] ReRAM PIM designs, all scaled to the same 32 x 32
// crossbar at full utilization (Sec. IV-B).  Also prints the ReSiPE
// power breakdown backing the "COG cluster contributes 98.1% of the
// power" claim.
#include <cstdio>
#include <iostream>

#include "bench_report.hpp"
#include "resipe/eval/comparison.hpp"

int main(int argc, char** argv) {
  resipe::bench::BenchReport report("table2_comparison", argc, argv);
  std::puts("=== TABLE II: PIM design comparison (32x32 array, full "
            "utilization) ===\n");
  const auto result = resipe::eval::compare_designs();
  std::cout << result.render() << "\n";
  std::puts("=== ReSiPE per-MVM energy breakdown ===\n");
  std::cout << result.resipe_breakdown << std::endl;

  const auto& h = result.headlines;
  report.add("power_reduction_vs_level", h.power_reduction_vs_level);
  report.add("peff_gain_vs_level", h.peff_gain_vs_level);
  report.add("peff_gain_vs_rate", h.peff_gain_vs_rate);
  report.add("peff_gain_vs_pwm", h.peff_gain_vs_pwm);
  report.add("cog_power_share", h.cog_power_share);
  return report.emit();
}
