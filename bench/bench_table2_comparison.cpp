// Reproduces TABLE II: power, power efficiency, computing latency and
// area of ReSiPE versus the level-based [14,17], rate-coding [11,13]
// and PWM-based [15] ReRAM PIM designs, all scaled to the same 32 x 32
// crossbar at full utilization (Sec. IV-B).  Also prints the ReSiPE
// power breakdown backing the "COG cluster contributes 98.1% of the
// power" claim.
#include <cstdio>
#include <iostream>

#include "resipe/eval/comparison.hpp"

int main() {
  std::puts("=== TABLE II: PIM design comparison (32x32 array, full "
            "utilization) ===\n");
  const auto result = resipe::eval::compare_designs();
  std::cout << result.render() << "\n";
  std::puts("=== ReSiPE per-MVM energy breakdown ===\n");
  std::cout << result.resipe_breakdown << std::endl;
  return 0;
}
