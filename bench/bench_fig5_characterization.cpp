// Reproduces Fig. 5: the input-output characterization of the
// single-spiking MVM — t_out versus the input strength t_in * G for
// 100 random sample points with total conductance 0.32..3.2 mS and
// arrival times 10..80 ns, plus the three fitting curves (Sec. III-D).
//
// Expected shape (checked in EXPERIMENTS.md):
//   * samples with G_total <= 1.6 mS hug Curve 1 with only slight
//     non-linearity;
//   * the 2.5 mS and 3.2 mS sweeps fall below Curve 1 and flatten at
//     large t_in*G (Ccog saturation).
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/csv.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/characterization.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("fig5_characterization", argc, argv);

  eval::CharacterizationConfig cfg;
  const auto result = eval::characterize(cfg);

  std::puts("=== Fig. 5: t_out vs input strength t_in * G ===\n");
  std::printf("random samples: %zu, G_total in [%.2f, %.2f] mS, t_in in "
              "[%.0f, %.0f] ns\n\n",
              result.random_samples.size(), cfg.g_total_min * 1e3,
              cfg.g_total_max * 1e3, cfg.t_in_min * 1e9,
              cfg.t_in_max * 1e9);

  // A digest of the random samples (every 10th point).
  TextTable t({"t_in", "G_total", "t_in*G (x-axis)", "t_out (measured)",
               "t_out (Eq.6 linear)"});
  for (std::size_t i = 0; i < result.random_samples.size(); i += 10) {
    const auto& p = result.random_samples[i];
    t.add_row({format_si(p.t_in, "s"), format_si(p.g_total, "S"),
               format_fixed(p.strength * 1e12, 2) + " ps*S",
               format_si(p.t_out, "s"), format_si(p.t_out_ideal, "s")});
  }
  std::puts(t.str().c_str());

  auto print_curve = [](const char* name, const PolyFit& fit) {
    std::printf("%s: t_out ~ %.3e + %.3e x + %.3e x^2   (r^2 = %.4f)\n",
                name, fit.coeffs[0], fit.coeffs[1], fit.coeffs[2], fit.r2);
  };
  print_curve("Curve 1 (G_total <= 1.6 mS)", result.curve1);
  print_curve("Curve 2 (G_total  = 2.5 mS)", result.curve2);
  print_curve("Curve 3 (G_total  = 3.2 mS)", result.curve3);

  // Saturation evidence: compare the three curves at a large input
  // strength (they must be ordered curve1 > curve2 > curve3).
  const double x_probe = 100e-12;  // 100 ps*S
  std::printf("\nAt t_in*G = 100 ps*S: curve1 = %s, curve2 = %s, "
              "curve3 = %s\n",
              format_si(result.curve1(x_probe), "s").c_str(),
              format_si(result.curve2(x_probe), "s").c_str(),
              format_si(result.curve3(x_probe), "s").c_str());

  // Shape checks (Sec. III-D): points above 1.6 mS fall below Curve 1;
  // saturation grows with t_in.
  std::size_t below = 0;
  std::size_t high_g = 0;
  for (const auto& p : result.random_samples) {
    if (p.g_total <= 1.6e-3) continue;
    ++high_g;
    if (p.t_out < result.curve1(p.strength)) ++below;
  }
  std::printf("\nSamples with G_total > 1.6 mS lying below Curve 1: "
              "%zu / %zu\n",
              below, high_g);

  if (argc > 1 && argv[1][0] != '-') {
    CsvWriter csv;
    std::vector<double> t_in, g, x, y, y_lin;
    for (const auto& p : result.random_samples) {
      t_in.push_back(p.t_in);
      g.push_back(p.g_total);
      x.push_back(p.strength);
      y.push_back(p.t_out);
      y_lin.push_back(p.t_out_ideal);
    }
    csv.add_column("t_in_s", t_in);
    csv.add_column("g_total_S", g);
    csv.add_column("strength_sS", x);
    csv.add_column("t_out_s", y);
    csv.add_column("t_out_linear_s", y_lin);
    csv.write_file(argv[1]);
    std::printf("\nwrote %s\n", argv[1]);
  }

  report.add("samples", static_cast<double>(result.random_samples.size()));
  report.add("curve1_r2", result.curve1.r2);
  report.add("curve2_r2", result.curve2.r2);
  report.add("curve3_r2", result.curve3.r2);
  report.add("high_g_below_curve1_frac",
             high_g > 0 ? static_cast<double>(below) /
                              static_cast<double>(high_g)
                        : 0.0);
  return report.emit();
}
