// Ablation: hard-fault tolerance — mitigation OFF vs ON.
//
// The reliability ablation (bench_ablation_reliability) measures how
// much raw MVM fidelity each defect mechanism costs; this bench closes
// the loop at the application level: classification accuracy of a
// trained network under stuck-at cell defects, with the mitigation
// pipeline (march-test detection, spare-column remapping, differential
// pair compensation) disabled and enabled on identical fault
// realizations.  The headline figures: at a 1% cell defect rate the
// mitigated engine must beat the blind engine and stay close to the
// zero-defect baseline.
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/eval/fault_tolerance.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("ablation_fault_tolerance", argc, argv);

  std::puts("=== Ablation: fault tolerance (mitigation OFF vs ON) ===\n");

  eval::FaultToleranceConfig cfg;
  cfg.defect_rates = {0.0025, 0.005, 0.01, 0.02};
  const auto r = eval::evaluate_fault_tolerance(cfg);
  std::puts(eval::render_fault_tolerance(r).c_str());

  report.add("software_accuracy", r.software_accuracy);
  report.add("baseline_accuracy", r.baseline_accuracy);
  for (const auto& p : r.points) {
    // Keys carry the rate in basis points: acc_on_bp100 = 1% defects.
    const int bp = static_cast<int>(p.defect_rate * 10000.0 + 0.5);
    char key[64];
    std::snprintf(key, sizeof key, "acc_off_bp%d", bp);
    report.add(key, p.accuracy_off);
    std::snprintf(key, sizeof key, "acc_on_bp%d", bp);
    report.add(key, p.accuracy_on);
    if (bp == 100) {
      report.add("recovered_at_1pct", p.accuracy_on - p.accuracy_off);
      report.add("gap_to_baseline_at_1pct",
                 r.baseline_accuracy - p.accuracy_on);
      report.add("cells_faulty_at_1pct",
                 static_cast<double>(p.cells_faulty));
      report.add("cells_compensated_at_1pct",
                 static_cast<double>(p.cells_compensated));
      report.add("columns_remapped_at_1pct",
                 static_cast<double>(p.columns_remapped));
      report.add("degraded_outputs_at_1pct",
                 static_cast<double>(p.degraded_outputs));
    }
  }
  return report.emit();
}
