// Ablation: COG sampling capacitor size.
//
// Sec. IV-B closes with "future technology scaling that enables smaller
// MIM capacitors in COG clusters could induce further energy
// reduction".  This bench sweeps Ccog and reports (a) the per-MVM
// energy, COG share and power efficiency, and (b) the computation
// fidelity — the RMS error of a 32x8 mapped MVM through the full
// circuit model — exposing the energy/accuracy trade.
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/common/units.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/resipe/design.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  using namespace resipe::units;
  bench::BenchReport bench_report("ablation_ccog", argc, argv);

  std::puts("=== Ablation: COG capacitor (Ccog) sweep ===\n");
  TextTable t({"Ccog", "Energy/MVM", "COG share", "Power eff.",
               "MVM RMSE", "alpha"});

  for (double ccog : {20.0 * fF, 50.0 * fF, 100.0 * fF, 150.0 * fF,
                      200.0 * fF}) {
    circuits::CircuitParams params;
    params.c_cog = ccog;

    resipe_core::ResipeDesign design(params);
    const auto point = design.evaluate();
    const auto report = design.mvm_report();

    resipe_core::EngineConfig cfg;
    cfg.circuit = params;
    const auto fidelity = eval::mvm_fidelity(cfg);

    t.add_row({format_si(ccog, "F"), format_si(point.energy_per_mvm, "J"),
               format_percent(report.energy_share("COG")),
               format_si(point.power_efficiency, "OPS/W"),
               format_percent(fidelity.rmse),
               format_fixed(fidelity.alpha, 3)});
    if (ccog == 100.0 * fF) {
      bench_report.add("energy_per_mvm_J_100fF", point.energy_per_mvm);
      bench_report.add("power_efficiency_100fF", point.power_efficiency);
      bench_report.add("mvm_rmse_100fF", fidelity.rmse);
    }
  }
  std::puts(t.str().c_str());
  std::puts("Smaller Ccog trims the sampling-cap charge (the comparator\n"
            "still dominates) and deepens the charging saturation k -> 1,\n"
            "which the per-column readout trim absorbs — the paper's\n"
            "future-work lever is nearly free in fidelity terms.");
  return bench_report.emit();
}
