// Reproduces Fig. 6: the trade-off between computing latency and
// design area — the overall throughput each design reaches when
// replicated under a fixed area budget (Sec. IV-B.3).
//
// Expected shape: under the same area budget ReSiPE provides the
// highest throughput because its engine footprint (no DAC/ADC) lets it
// replicate more tiles per mm^2.
#include <cmath>
#include <cctype>
#include <cstdio>
#include <iostream>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/eval/throughput.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  bench::BenchReport report("fig6_throughput", argc, argv);

  std::puts("=== Fig. 6: latency / area / throughput trade-off ===\n");
  const auto result = eval::throughput_tradeoff();
  std::cout << result.render() << "\n";

  // Iso-throughput lines (the dashed lines of Fig. 6): area each design
  // needs to sustain a target throughput.
  std::puts("Iso-throughput requirements (area needed per design):");
  TextTable t({"Target throughput", "ReSiPE", "Level-based", "Rate-coding",
               "PWM-based"});
  for (double target : {0.1e12, 0.5e12, 1.0e12}) {  // ops/s
    std::vector<std::string> row{format_si(target, "OPS")};
    for (const auto& s : result.series) {
      const double engines = std::ceil(target / s.engine_throughput);
      row.push_back(format_fixed(engines * s.engine_area * 1e6, 4) +
                    " mm2");
    }
    t.add_row(std::move(row));
  }
  std::cout << t;

  for (const auto& s : result.series) {
    std::string key = s.name;
    for (char& ch : key) {
      if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    }
    report.add(key + "_engine_throughput_ops", s.engine_throughput);
    report.add(key + "_engine_area_m2", s.engine_area);
  }
  return report.emit();
}
