// Machine-readable bench reports.
//
// Every bench binary prints its ASCII tables as before and, on exit,
// emits one `BENCH_JSON {...}` line on stdout with its name, wall time
// and key figures so harnesses can accumulate a perf trajectory without
// scraping tables.  Pass `--json FILE` (or set RESIPE_BENCH_JSON=FILE)
// to additionally write the report to a file.
//
// Each line is stamped with the provenance the regression tracker keys
// on: `git_sha` (RESIPE_GIT_SHA compile definition from CMake; the
// RESIPE_GIT_SHA / GITHUB_SHA environment variables override it at run
// time for CI), `config_hash` (FNV-1a of the EngineConfig the bench
// ran — call set_config() when the bench deviates from defaults) and
// `threads` (the resolved process-wide default).
//
//   int main(int argc, char** argv) {
//     resipe::bench::BenchReport report("fig6_throughput", argc, argv);
//     ...
//     report.add("resipe_throughput_ops", value);
//     return report.emit();
//   }
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "resipe/common/parallel.hpp"
#include "resipe/common/simd.hpp"
#include "resipe/introspect/inspect.hpp"
#include "resipe/resipe/network.hpp"

namespace resipe::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name, int argc = 0,
                       char** argv = nullptr)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) json_path_ = argv[i + 1];
    }
    if (json_path_.empty()) {
      if (const char* env = std::getenv("RESIPE_BENCH_JSON")) {
        json_path_ = env;
      }
    }
  }

  void add(const std::string& key, double value) {
    numbers_.emplace_back(key, value);
  }
  void add(const std::string& key, const std::string& value) {
    strings_.emplace_back(key, value);
  }

  /// Stamps this report with the hash of the config the bench actually
  /// ran (defaults to a default-constructed EngineConfig).
  void set_config(const resipe_core::EngineConfig& config) {
    config_hash_ = introspect::engine_config_hash(config);
  }

  /// Prints the BENCH_JSON line (and optional file); returns 0 so mains
  /// can `return report.emit();`.
  int emit() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::string json = "{\"bench\":\"" + escape(name_) + "\"";
    json += ",\"git_sha\":\"" + escape(git_sha()) + "\"";
    if (config_hash_.empty()) {
      config_hash_ =
          introspect::engine_config_hash(resipe_core::EngineConfig{});
    }
    json += ",\"config_hash\":\"" + escape(config_hash_) + "\"";
    json += ",\"threads\":" + std::to_string(default_threads());
    // The ISA the kernels actually ran with (honors RESIPE_SIMD=scalar)
    // and the build's vector flags: numbers from different ISAs are not
    // comparable, and bench_diff keys its baselines on this stamp.
    json += ",\"simd_isa\":\"" + escape(simd::active_isa()) + "\"";
    json += ",\"march\":\"" + escape(simd::march_flags()) + "\"";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", wall_s);
    json += ",\"wall_time_s\":";
    json += buf;
    json += ",\"figures\":{";
    bool first = true;
    for (const auto& [key, value] : numbers_) {
      if (!first) json += ",";
      first = false;
      std::snprintf(buf, sizeof buf, "%.17g", value);
      json += "\"";
      json += escape(key);
      json += "\":";
      json += buf;
    }
    for (const auto& [key, value] : strings_) {
      if (!first) json += ",";
      first = false;
      json += "\"";
      json += escape(key);
      json += "\":\"";
      json += escape(value);
      json += "\"";
    }
    json += "}}";
    std::printf("BENCH_JSON %s\n", json.c_str());
    if (!json_path_.empty()) {
      std::ofstream os(json_path_);
      if (os.good()) {
        os << json << "\n";
      } else {
        std::fprintf(stderr, "bench_report: cannot write %s\n",
                     json_path_.c_str());
        return 1;
      }
    }
    return 0;
  }

 private:
  static std::string git_sha() {
    // Run-time override first so CI stamps the exact commit even when
    // the build cache predates it.
    for (const char* var : {"RESIPE_GIT_SHA", "GITHUB_SHA"}) {
      if (const char* env = std::getenv(var)) {
        if (*env != '\0') return env;
      }
    }
#if defined(RESIPE_GIT_SHA)
    return RESIPE_GIT_SHA;
#else
    return "unknown";
#endif
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      if (ch == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(ch);
    }
    return out;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::string json_path_;
  std::string config_hash_;
  std::vector<std::pair<std::string, double>> numbers_;
  std::vector<std::pair<std::string, std::string>> strings_;
};

}  // namespace resipe::bench
