// Ablation: crossbar array size under the total-G constraint.
//
// Sec. III-D concludes the design stays well-behaved while a column's
// total conductance is <= 1.6 mS, which the 50 k..1 M NN-mapping
// window guarantees for 32 rows.  This bench sweeps the array size and
// reports the worst-case column conductance, the end-to-end MVM
// fidelity at that size, and the per-op energy — showing why 32 x 32
// is the paper's sweet spot.
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/common/units.hpp"
#include "resipe/eval/fidelity.hpp"
#include "resipe/resipe/design.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  using namespace resipe::units;
  bench::BenchReport report("ablation_array_size", argc, argv);

  std::puts("=== Ablation: array size sweep (NN-mapping device window) "
            "===\n");
  const device::ReramSpec spec = device::ReramSpec::nn_mapping();

  TextTable t({"Array", "Worst column G", "<= 1.6 mS?", "MVM RMSE",
               "Energy/MVM", "Energy/op"});
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const double worst_g = spec.g_max() * static_cast<double>(n);

    resipe_core::EngineConfig cfg;
    cfg.tile_rows = n;
    cfg.tile_cols = n;
    const auto fidelity =
        eval::mvm_fidelity(cfg, /*in=*/n, /*out=*/n / 4,
                           /*samples=*/48);

    circuits::CircuitParams params;
    resipe_core::ResipeDesign design(params, spec, n, n);
    const auto point = design.evaluate();
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               format_si(worst_g, "S"),
               worst_g <= 1.6e-3 ? "yes" : "no",
               format_percent(fidelity.rmse),
               format_si(point.energy_per_mvm, "J"),
               format_si(point.energy_per_mvm / point.ops_per_mvm, "J")});
    if (n == 32) {
      report.add("mvm_rmse_32x32", fidelity.rmse);
      report.add("energy_per_op_J_32x32",
                 point.energy_per_mvm / point.ops_per_mvm);
    }
  }
  std::puts(t.str().c_str());
  std::puts("Larger arrays amortize the COG cluster over more MACs "
            "(energy/op falls)\nbut accumulate more rows per column, "
            "raising conductance loading and\nquantization pressure on "
            "the single-spike output.");
  return report.emit();
}
