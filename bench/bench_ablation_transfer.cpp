// Ablation: exact exponential vs linearized transfer functions.
//
// Quantifies the non-linearity the paper analyzes in Sec. III-D: how
// far the exact RC behaviour deviates from the Eq.(1)/(3)/(4)
// linearizations across the operating range, and how much of the S1
// warp the shared-ramp S2 inversion cancels.
#include <cmath>
#include <cstdio>

#include "bench_report.hpp"
#include "resipe/common/table.hpp"
#include "resipe/common/units.hpp"
#include "resipe/eval/characterization.hpp"

int main(int argc, char** argv) {
  using namespace resipe;
  using namespace resipe::units;
  bench::BenchReport report("ablation_transfer", argc, argv);

  std::puts("=== Ablation: exact vs linearized transfer model ===\n");

  circuits::CircuitParams exact = circuits::CircuitParams::paper_defaults();
  circuits::CircuitParams linear = exact;
  linear.model = circuits::TransferModel::kLinear;

  TextTable t({"G_total", "t_in", "t_out exact", "t_out linearized",
               "Eq.6 prediction", "exact dev", "linear dev"});
  double max_exact_dev = 0.0;
  double max_linear_dev = 0.0;
  for (double g : {0.32e-3, 0.64e-3, 1.6e-3, 2.5e-3, 3.2e-3}) {
    for (double t_in : {20.0 * ns, 50.0 * ns, 80.0 * ns}) {
      const double t_exact = eval::single_point_t_out(exact, 32, t_in, g);
      const double t_linear = eval::single_point_t_out(linear, 32, t_in, g);
      const double eq6 = exact.linear_gain() * t_in * g;
      const double full = exact.slice_length;
      const double exact_dev =
          std::abs(t_exact - std::min(eq6, full)) / full;
      const double linear_dev =
          std::abs(t_linear - std::min(eq6, full)) / full;
      max_exact_dev = std::max(max_exact_dev, exact_dev);
      max_linear_dev = std::max(max_linear_dev, linear_dev);
      t.add_row({format_si(g, "S"), format_si(t_in, "s"),
                 format_si(t_exact, "s"), format_si(t_linear, "s"),
                 format_si(eq6, "s"), format_percent(exact_dev),
                 format_percent(linear_dev)});
    }
  }
  std::puts(t.str().c_str());

  // The cancellation property: with a single dominant conductance and a
  // saturating computation stage (k -> 1), the exact model returns
  // t_out ~ t_in regardless of the exponential ramp shape, because the
  // same ramp encodes (S1) and decodes (S2) the timing.
  std::puts("Shared-ramp cancellation check (k -> 1, single input):");
  double worst_residual = 0.0;
  for (double t_in : {20.0 * ns, 50.0 * ns, 80.0 * ns}) {
    const double t_out = eval::single_point_t_out(exact, 1, t_in, 3.2e-3);
    const double residual = std::abs(t_out - t_in) / t_in;
    worst_residual = std::max(worst_residual, residual);
    std::printf("  t_in = %s -> t_out = %s (residual %.3f%%)\n",
                format_si(t_in, "s").c_str(),
                format_si(t_out, "s").c_str(), residual * 100.0);
  }

  report.add("max_exact_dev", max_exact_dev);
  report.add("max_linear_dev", max_linear_dev);
  report.add("worst_cancellation_residual", worst_residual);
  return report.emit();
}
