// Ablation: exact exponential vs linearized transfer functions.
//
// Quantifies the non-linearity the paper analyzes in Sec. III-D: how
// far the exact RC behaviour deviates from the Eq.(1)/(3)/(4)
// linearizations across the operating range, and how much of the S1
// warp the shared-ramp S2 inversion cancels.
#include <cmath>
#include <cstdio>

#include "resipe/common/table.hpp"
#include "resipe/common/units.hpp"
#include "resipe/eval/characterization.hpp"

int main() {
  using namespace resipe;
  using namespace resipe::units;

  std::puts("=== Ablation: exact vs linearized transfer model ===\n");

  circuits::CircuitParams exact = circuits::CircuitParams::paper_defaults();
  circuits::CircuitParams linear = exact;
  linear.model = circuits::TransferModel::kLinear;

  TextTable t({"G_total", "t_in", "t_out exact", "t_out linearized",
               "Eq.6 prediction", "exact dev", "linear dev"});
  for (double g : {0.32e-3, 0.64e-3, 1.6e-3, 2.5e-3, 3.2e-3}) {
    for (double t_in : {20.0 * ns, 50.0 * ns, 80.0 * ns}) {
      const double t_exact = eval::single_point_t_out(exact, 32, t_in, g);
      const double t_linear = eval::single_point_t_out(linear, 32, t_in, g);
      const double eq6 = exact.linear_gain() * t_in * g;
      const double full = exact.slice_length;
      t.add_row({format_si(g, "S"), format_si(t_in, "s"),
                 format_si(t_exact, "s"), format_si(t_linear, "s"),
                 format_si(eq6, "s"),
                 format_percent(std::abs(t_exact - std::min(eq6, full)) /
                                full),
                 format_percent(std::abs(t_linear - std::min(eq6, full)) /
                                full)});
    }
  }
  std::puts(t.str().c_str());

  // The cancellation property: with a single dominant conductance and a
  // saturating computation stage (k -> 1), the exact model returns
  // t_out ~ t_in regardless of the exponential ramp shape, because the
  // same ramp encodes (S1) and decodes (S2) the timing.
  std::puts("Shared-ramp cancellation check (k -> 1, single input):");
  for (double t_in : {20.0 * ns, 50.0 * ns, 80.0 * ns}) {
    const double t_out = eval::single_point_t_out(exact, 1, t_in, 3.2e-3);
    std::printf("  t_in = %s -> t_out = %s (residual %.3f%%)\n",
                format_si(t_in, "s").c_str(),
                format_si(t_out, "s").c_str(),
                std::abs(t_out - t_in) / t_in * 100.0);
  }
  return 0;
}
